// The host-level shared recovery agent (tcp/recovery_agent.hpp): forced
// early retransmits rescue quiet flows before the backed-off RTO, spurious
// forcings are disproved by DSACK exactly once and undo cwnd on the TDN
// that entered the episode, double close leaves no timer armed and no
// registration leaked, and a churned experiment with the agent on stays
// bit-identical across runs and thread pools.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "app/experiment.hpp"
#include "app/sweep.hpp"
#include "cc/registry.hpp"
#include "tcp/recovery_agent.hpp"
#include "tcp/tcp_connection.hpp"
#include "test_util.hpp"

namespace tdtcp {
namespace {

using test::LoopbackHarness;

// RACK/TLP off: the agent's target population is flows whose only other
// recovery is the RTO, and the assertions below want no probe traffic
// muddying the retransmission counts.
TcpConfig RtoOnlyConfig() {
  TcpConfig c;
  c.mss = 1000;
  c.cc_factory = MakeCcFactory("reno");
  c.rack_enabled = false;
  c.tlp_enabled = false;
  return c;
}

TcpConfig RtoOnlyTdtcpConfig() {
  TcpConfig c = RtoOnlyConfig();
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  return c;
}

// Tight thresholds so tests force within a few hundred microseconds: scan
// every 50us, call a flow quiet after 100us. The RTO floor is 500us
// (rtt_estimator.hpp), so the agent demonstrably beats it.
RecoveryConfig TestAgentConfig() {
  RecoveryConfig rc;
  rc.epoch = SimTime::Micros(50);
  rc.min_linger = SimTime::Micros(100);
  rc.max_linger = SimTime::Millis(1);
  return rc;
}

// Agent constructed before the connection (registration happens in the
// TcpConnection constructor via Host::recovery_agent()) and destroyed
// after it (teardown deregisters from the live agent).
struct AgentFixture {
  explicit AgentFixture(TcpConfig config = RtoOnlyConfig(),
                        RecoveryConfig rc = TestAgentConfig())
      : harness(sim), agent(sim, harness.host, rc),
        conn(sim, &harness.host, 1, 99, config) {
    conn.Connect();
    harness.Settle();
    Packet syn = harness.out.Pop();
    conn.HandlePacket(LoopbackHarness::SynAckFor(
        syn, conn.config().tdtcp_enabled, conn.config().num_tdns));
    harness.Settle();
    harness.out.packets.clear();
    EXPECT_EQ(conn.state(), TcpConnection::State::kEstablished);
    // One acked segment primes the RTT estimator (the loopback handshake
    // yields no sample, and an unsampled connection's quiet threshold is
    // pessimistically RTO-sized — correct, but not what these tests probe).
    conn.AddAppData(1000);
    harness.Settle();
    sim.RunUntil(sim.now() + SimTime::Micros(20));
    conn.HandlePacket(LoopbackHarness::Ack(
        1, 1001, {}, conn.config().tdtcp_enabled ? TdnId{0} : kNoTdn));
    harness.Settle();
    harness.out.packets.clear();
    EXPECT_EQ(conn.stats().retransmissions, 0u);
  }

  Simulator sim;
  LoopbackHarness harness;
  RecoveryAgent agent;
  TcpConnection conn;
};

// ---------------------------------------------------------------------------
// Mode names
// ---------------------------------------------------------------------------

TEST(RecoveryMode, NamesRoundTripAndRejectGarbage) {
  for (const RecoveryMode m :
       {RecoveryMode::kOff, RecoveryMode::kRack, RecoveryMode::kAgent}) {
    EXPECT_EQ(RecoveryModeFromName(RecoveryModeName(m)), m);
  }
  EXPECT_THROW(RecoveryModeFromName("agressive"), std::invalid_argument);
  EXPECT_THROW(RecoveryModeFromName(""), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Forcing and rescue
// ---------------------------------------------------------------------------

TEST(RecoveryAgent, ForcesQuietFlowBeforeRtoAndCountsTheRescue) {
  AgentFixture f;
  f.conn.AddAppData(1000);
  f.harness.Settle();
  ASSERT_EQ(f.conn.stats().recovery_forced, 0u);

  // The single segment's ACK never comes. The agent's 100us threshold lands
  // well before the 500us RTO floor — and exactly once, because a rescue
  // already in flight (head.retrans) is never re-forced.
  f.sim.RunUntil(SimTime::Micros(450));
  EXPECT_EQ(f.conn.stats().recovery_forced, 1u);
  EXPECT_EQ(f.agent.stats().forced, 1u);
  EXPECT_GE(f.conn.stats().retransmissions, 1u);
  EXPECT_EQ(f.conn.stats().timeouts, 0u);
  EXPECT_GT(f.agent.stats().epochs, 1u);

  // The cumulative ACK retires the forced segment: a rescue, not spurious.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 2001));
  EXPECT_EQ(f.conn.stats().recovery_rescued, 1u);
  EXPECT_EQ(f.agent.stats().rescued, 1u);
  EXPECT_EQ(f.conn.stats().recovery_spurious, 0u);

  // The forced retransmit re-armed the RTO without the exponential bump:
  // nothing fires into the now-clean connection.
  f.sim.RunUntil(SimTime::Millis(3));
  EXPECT_EQ(f.conn.stats().timeouts, 0u);
}

TEST(RecoveryAgent, IdleConnectionIsNeverForced) {
  AgentFixture f;
  // Established but nothing outstanding: the quiet clock must not run.
  f.sim.RunUntil(SimTime::Millis(2));
  EXPECT_GT(f.agent.stats().epochs, 10u);
  EXPECT_EQ(f.agent.stats().forced, 0u);
  EXPECT_EQ(f.conn.stats().retransmissions, 0u);
}

// ---------------------------------------------------------------------------
// Spurious forcing: DSACK disproof, exactly-once, right-TDN undo
// ---------------------------------------------------------------------------

TEST(RecoveryAgent, SpuriousForcingUndoesTheEnteringTdnExactlyOnce) {
  AgentFixture f(RtoOnlyTdtcpConfig());
  f.conn.AddAppData(5000);
  f.harness.Settle();  // 5 TDN-0 segments in flight, seq 1001..6001
  const auto cwnd0_before = f.conn.tdns().state(0).cwnd;

  // The ACKs are merely delayed; the agent forces the head on TDN 0.
  f.sim.RunUntil(SimTime::Micros(200));
  ASSERT_EQ(f.conn.stats().recovery_forced, 1u);
  EXPECT_EQ(f.conn.tdns().state(0).ca_state, CaState::kRecovery);
  EXPECT_LE(f.conn.tdns().state(0).cwnd, cwnd0_before);

  // Mid-episode the fabric rotates to TDN 1 (through the host notification
  // path), so proof time and episode time disagree about the active TDN.
  Packet notify;
  notify.type = PacketType::kTdnNotify;
  notify.notify_tdn = 1;
  notify.notify_seq = 1;
  f.harness.host.HandlePacket(std::move(notify));
  f.harness.Settle();
  ASSERT_EQ(f.conn.tdns().active_id(), 1);

  // The delayed original of the forced head arrives: the cumulative ACK
  // retires it (a rescue so far) while the rest of the window — and with it
  // the recovery episode on TDN 0 — stays open.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 2001, {}, 0));
  EXPECT_EQ(f.conn.stats().recovery_rescued, 1u);
  // ...then the forced copy lands as a duplicate: the receiver's DSACK
  // disproves the forcing even though the segment left the send queue.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 2001, {{1001, 2001}}, 0));
  EXPECT_EQ(f.conn.stats().recovery_spurious, 1u);
  EXPECT_EQ(f.agent.stats().spurious, 1u);
  EXPECT_GT(f.agent.scale(), 1.0);

  // The undo credited TDN 0 — the episode's TDN, not the active one.
  EXPECT_GE(f.conn.stats().undo_events, 1u);
  EXPECT_GE(f.conn.tdns().state(0).cwnd, cwnd0_before);
  EXPECT_NE(f.conn.tdns().state(0).ca_state, CaState::kRecovery);

  // A re-delivered DSACK for the same range must not double-count.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 2001, {{1001, 2001}}, 0));
  EXPECT_EQ(f.conn.stats().recovery_spurious, 1u);
  EXPECT_EQ(f.agent.stats().spurious, 1u);
}

TEST(RecoveryAgent, DsackRidingTheRetiringAckCountsSpuriousOnce) {
  // The other arm of the race: the DSACK arrives in the same packet as the
  // cumulative ACK that retires the forced segment. SACK processing runs
  // first, finds the segment still queued, and resolves the forcing as
  // spurious before retirement can also call it a rescue.
  AgentFixture f;
  f.conn.AddAppData(3000);
  f.harness.Settle();
  f.sim.RunUntil(SimTime::Micros(200));
  ASSERT_EQ(f.conn.stats().recovery_forced, 1u);

  f.conn.HandlePacket(LoopbackHarness::Ack(1, 4001, {{1001, 2001}}));
  EXPECT_EQ(f.conn.stats().recovery_spurious, 1u);
  EXPECT_EQ(f.conn.stats().recovery_rescued, 0u);
  // And replaying the DSACK afterwards still cannot double-count.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 4001, {{1001, 2001}}));
  EXPECT_EQ(f.conn.stats().recovery_spurious, 1u);
}

// ---------------------------------------------------------------------------
// Teardown: double close, timer audit, registration accounting
// ---------------------------------------------------------------------------

TEST(RecoveryAgent, DoubleCloseLeavesNoTimerArmedAndNoRegistration) {
  AgentFixture f;
  f.conn.AddAppData(2000);
  f.harness.Settle();  // data in flight: RTO armed, agent watching
  EXPECT_EQ(f.agent.registered(), 1u);
  ASSERT_GT(f.harness.host.wheel().armed_count(), 1u);

  f.conn.Abort();
  EXPECT_EQ(f.conn.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(f.agent.registered(), 0u);
  // ToClosed's audit: all four connection timers left the wheel; the only
  // survivor is the agent's own epoch timer.
  EXPECT_EQ(f.harness.host.wheel().armed_count(), 1u);

  // Close and abort again: every path re-runs CancelTimers, whose wheel
  // disarms are idempotent — the old EventId scheme needed luck here.
  f.conn.Close();
  f.conn.Abort();
  EXPECT_EQ(f.conn.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(f.agent.registered(), 0u);
  EXPECT_EQ(f.harness.host.wheel().armed_count(), 1u);

  // Nothing fires into the dead connection.
  const auto timeouts = f.conn.stats().timeouts;
  f.sim.RunUntil(f.sim.now() + SimTime::Millis(3));
  EXPECT_EQ(f.conn.stats().timeouts, timeouts);
  EXPECT_EQ(f.agent.stats().forced, 0u);
}

TEST(RecoveryAgent, AgentDeathOrphansRegistrationsSafely) {
  // The experiment teardown order in reverse: agent destroyed while a
  // connection is still live; its later close must not touch freed memory.
  Simulator sim;
  LoopbackHarness harness(sim);
  auto agent = std::make_unique<RecoveryAgent>(sim, harness.host,
                                               TestAgentConfig());
  TcpConnection conn(sim, &harness.host, 1, 99, RtoOnlyConfig());
  EXPECT_EQ(agent->registered(), 1u);
  agent.reset();
  EXPECT_EQ(harness.host.recovery_agent(), nullptr);
  conn.Abort();  // Deregister on an orphaned node: no-op
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
}

// ---------------------------------------------------------------------------
// Experiment integration: determinism and stat plumbing
// ---------------------------------------------------------------------------

ExperimentConfig AgentChurnConfig() {
  ExperimentConfig cfg = PaperConfig(Variant::kTdtcp)
                             .WithFlows(2)
                             .WithDuration(SimTime::Millis(25))
                             .WithWarmup(SimTime::Millis(2))
                             .WithSampling(false, false)
                             .WithSeed(11)
                             .WithRecovery(RecoveryMode::kAgent);
  ChurnConfig cc;
  cc.target_connections = 300;
  cc.mean_interarrival = SimTime::Micros(40);
  cc.min_transfer_bytes = 8940;
  cc.max_transfer_bytes = 4 * 8940;
  cc.max_concurrent = 24;
  cfg.WithChurnConfig(cc);
  // Burst loss so the agent has actual tails to rescue.
  FaultPlan plan;
  plan.fabric.gilbert_elliott = true;
  plan.fabric.ge_p_good_to_bad = 0.002;
  plan.fabric.ge_p_bad_to_good = 0.2;
  cfg.WithFault(plan);
  return cfg;
}

TEST(RecoveryExperiment, AgentChurnIsBitIdenticalAcrossRunsAndJobs) {
  const ExperimentConfig cfg = AgentChurnConfig();
  const ExperimentResult solo = RunExperiment(cfg);
  // The agent actually engaged, and the stats flowed out of the hosts.
  EXPECT_GT(solo.churn.opened, 0u);
  EXPECT_GT(solo.recovery_forced, 0u);
  EXPECT_NE(solo.churn_hash, 0u);

  std::vector<ExperimentResult> pooled(2);
  ParallelFor(2, 2, [&](std::size_t i) { pooled[i] = RunExperiment(cfg); });
  for (const ExperimentResult& r : pooled) {
    EXPECT_EQ(r.churn_hash, solo.churn_hash);
    EXPECT_EQ(r.recovery_forced, solo.recovery_forced);
    EXPECT_EQ(r.recovery_rescued, solo.recovery_rescued);
    EXPECT_EQ(r.recovery_spurious, solo.recovery_spurious);
    EXPECT_EQ(r.total_bytes, solo.total_bytes);
    EXPECT_EQ(r.churn.opened, solo.churn.opened);
    EXPECT_EQ(r.churn.closed, solo.churn.closed);
  }
}

TEST(RecoveryExperiment, OffModeDisablesRackAndTlp) {
  // kOff strips RACK/TLP from the effective workload config: with burst
  // loss, pure-RTO recovery shows strictly more timeouts than the default
  // stack on the identical deterministic run.
  ExperimentConfig off = AgentChurnConfig();
  off.recovery = RecoveryMode::kOff;
  ExperimentConfig rack = AgentChurnConfig();
  rack.recovery = RecoveryMode::kRack;
  const ExperimentResult r_off = RunExperiment(off);
  const ExperimentResult r_rack = RunExperiment(rack);
  EXPECT_GT(r_off.timeouts, r_rack.timeouts);
  // No agents planted in either mode.
  EXPECT_EQ(r_off.recovery_forced, 0u);
  EXPECT_EQ(r_rack.recovery_forced, 0u);
}

}  // namespace
}  // namespace tdtcp
