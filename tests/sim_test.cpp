// Simulator core: time arithmetic, event ordering, cancellation, clock
// correctness (callbacks must observe their own event's time), determinism.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace tdtcp {
namespace {

TEST(SimTime, UnitConversions) {
  EXPECT_EQ(SimTime::Nanos(1).picos(), 1'000);
  EXPECT_EQ(SimTime::Micros(1).nanos(), 1'000);
  EXPECT_EQ(SimTime::Millis(1).micros(), 1'000);
  EXPECT_EQ(SimTime::Seconds(1).millis(), 1'000);
  EXPECT_DOUBLE_EQ(SimTime::Micros(2).seconds(), 2e-6);
  EXPECT_DOUBLE_EQ(SimTime::MicrosF(1.5).micros_f(), 1.5);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::Micros(10);
  const SimTime b = SimTime::Micros(4);
  EXPECT_EQ((a + b).micros(), 14);
  EXPECT_EQ((a - b).micros(), 6);
  EXPECT_EQ((a * 3).micros(), 30);
  EXPECT_EQ((a / 2).micros(), 5);
  EXPECT_EQ(a / b, 2);
  EXPECT_EQ((a % b).micros(), 2);
  EXPECT_LT(b, a);
  EXPECT_TRUE(SimTime::Zero().IsZero());
}

TEST(SimTime, TransmissionTimeExact) {
  // 1500 bytes at 100 Gbps = 120 ns exactly.
  EXPECT_EQ(TransmissionTime(1500, 100'000'000'000).nanos(), 120);
  // 9000 bytes at 10 Gbps = 7.2 us.
  EXPECT_EQ(TransmissionTime(9000, 10'000'000'000).nanos(), 7200);
  // One byte at 1 bps = 8 seconds.
  EXPECT_EQ(TransmissionTime(1, 1).picos(), 8'000'000'000'000);
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::Micros(3).ToString(), "3us");
  EXPECT_EQ(SimTime::Nanos(5).ToString(), "5ns");
  EXPECT_EQ(SimTime::Picos(7).ToString(), "7ps");
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime::Micros(3), [&] { order.push_back(3); });
  q.Schedule(SimTime::Micros(1), [&] { order.push_back(1); });
  q.Schedule(SimTime::Micros(2), [&] { order.push_back(2); });
  while (!q.Empty()) {
    auto ev = q.PopNext();
    ev.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(SimTime::Micros(5), [&order, i] { order.push_back(i); });
  }
  while (!q.Empty()) q.PopNext().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  bool ran = false;
  EventId id = q.Schedule(SimTime::Micros(1), [&] { ran = true; });
  EXPECT_EQ(q.size(), 1u);
  q.Cancel(id);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.NextTime(), SimTime::Max());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelFiredIdIsNoOp) {
  EventQueue q;
  EventId id = q.Schedule(SimTime::Micros(1), [] {});
  q.PopNext().fn();
  q.Cancel(id);  // already fired
  q.Cancel(kInvalidEventId);
  q.Cancel(9999);  // never existed
  q.Schedule(SimTime::Micros(2), [] {});
  EXPECT_EQ(q.size(), 1u);  // count not corrupted
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId early = q.Schedule(SimTime::Micros(1), [] {});
  q.Schedule(SimTime::Micros(5), [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextTime(), SimTime::Micros(5));
}

TEST(Simulator, CallbackSeesItsOwnEventTime) {
  // Regression: callbacks must observe the event's time, not the previous
  // event's — otherwise every relative schedule drifts early.
  Simulator sim;
  SimTime observed = SimTime::Zero();
  sim.Schedule(SimTime::Micros(1), [] {});  // an earlier event
  sim.Schedule(SimTime::Micros(10), [&] { observed = sim.now(); });
  sim.Run();
  EXPECT_EQ(observed, SimTime::Micros(10));
}

TEST(Simulator, RelativeScheduleChainsExactly) {
  // A self-rescheduling 200 us cycle must not drift over many iterations.
  Simulator sim;
  int fires = 0;
  std::function<void()> tick = [&] {
    ++fires;
    if (fires < 1000) sim.Schedule(SimTime::Micros(200), tick);
  };
  sim.Schedule(SimTime::Micros(200), tick);
  sim.Run();
  EXPECT_EQ(fires, 1000);
  EXPECT_EQ(sim.now(), SimTime::Micros(200'000));
}

TEST(Simulator, RunUntilAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(SimTime::Micros(5), [&] { ++fired; });
  sim.Schedule(SimTime::Micros(15), [&] { ++fired; });
  sim.RunUntil(SimTime::Micros(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::Micros(10));
  sim.RunUntil(SimTime::Micros(20));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(SimTime::Micros(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(SimTime::Micros(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, ZeroDelayRunsAfterCurrentEvent) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(SimTime::Micros(1), [&] {
    order.push_back(1);
    sim.Schedule(SimTime::Zero(), [&] { order.push_back(2); });
    order.push_back(3);
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, ScheduleInThePastThrows) {
  // A past-time schedule is always a caller bug (an event that could never
  // fire in real time); it must fail loudly, not silently warp the clock or
  // assert only in debug builds.
  Simulator sim;
  sim.Schedule(SimTime::Micros(10), [] {});
  sim.RunUntil(SimTime::Micros(20));
  EXPECT_THROW(sim.ScheduleAt(SimTime::Micros(5), [] {}), std::logic_error);
  // The diagnostic names both times so the offending callsite is findable.
  try {
    sim.ScheduleAt(SimTime::Micros(5), [] {});
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("past"), std::string::npos);
    EXPECT_NE(what.find("at="), std::string::npos);
    EXPECT_NE(what.find("now="), std::string::npos);
  }
  // Scheduling exactly at `now` remains legal (zero-delay events).
  EXPECT_NO_THROW(sim.ScheduleAt(sim.now(), [] {}));
}

TEST(Simulator, CancelPendingTimer) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(SimTime::Micros(10), [&] { fired = true; });
  sim.Schedule(SimTime::Micros(5), [&] { sim.Cancel(id); });
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(Random, DeterministicAcrossInstances) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1'000'000), b.UniformInt(0, 1'000'000));
  }
}

TEST(Random, UniformIntWithinBounds) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Random, BernoulliExtremes) {
  Random r(1);
  EXPECT_FALSE(r.Bernoulli(0.0));
  EXPECT_TRUE(r.Bernoulli(1.0));
}

TEST(Random, LognormalTimePositiveAndScales) {
  Random r(3);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const SimTime t = r.LognormalTime(SimTime::Micros(4), 0.7);
    EXPECT_GT(t, SimTime::Zero());
    sum += t.micros_f();
  }
  // Mean of lognormal(median m, sigma) = m * exp(sigma^2/2) ~ 5.1 us.
  EXPECT_NEAR(sum / 2000.0, 5.1, 1.0);
}

TEST(Random, UniformTimeWithinRange) {
  Random r(5);
  for (int i = 0; i < 100; ++i) {
    const SimTime t = r.UniformTime(SimTime::Micros(1), SimTime::Micros(2));
    EXPECT_GE(t, SimTime::Micros(1));
    EXPECT_LE(t, SimTime::Micros(2));
  }
}

}  // namespace
}  // namespace tdtcp
