// Network substrate: queues, links, fabric ports, hosts, ToR switches.
#include <gtest/gtest.h>

#include "net/fabric_port.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "net/queue_disc.hpp"
#include "net/topology.hpp"
#include "net/tor_switch.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace tdtcp {
namespace {

using test::CaptureSink;

// Packet ids now come from the owning Simulator (Simulator::NextPacketId);
// these standalone queue/link tests just need distinct ids.
std::uint64_t NextTestPacketId() {
  static std::uint64_t next = 1;
  return next++;
}

Packet MakeData(std::uint32_t size = 9000, NodeId dst = 1) {
  Packet p;
  p.id = NextTestPacketId();
  p.type = PacketType::kData;
  p.size_bytes = size;
  p.payload = size - 60;
  p.dst = dst;
  return p;
}

// ---------------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------------

TEST(Queue, DropsWhenFull) {
  QueueDisc q(QueueDisc::Config{.capacity_packets = 2});
  EXPECT_TRUE(q.Enqueue(MakeData()));
  EXPECT_TRUE(q.Enqueue(MakeData()));
  EXPECT_FALSE(q.Enqueue(MakeData()));
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.occupancy(), 2u);
}

TEST(Queue, FifoOrder) {
  QueueDisc q(QueueDisc::Config{.capacity_packets = 10});
  Packet a = MakeData();
  Packet b = MakeData();
  const auto ida = a.id, idb = b.id;
  q.Enqueue(std::move(a));
  q.Enqueue(std::move(b));
  EXPECT_EQ(q.Dequeue(SimTime::Zero())->id, ida);
  EXPECT_EQ(q.Dequeue(SimTime::Zero())->id, idb);
  EXPECT_FALSE(q.Dequeue(SimTime::Zero()).has_value());
}

TEST(Queue, EcnMarksAboveThreshold) {
  QueueDisc q(QueueDisc::Config{.capacity_packets = 10, .ecn_threshold_packets = 2});
  for (int i = 0; i < 4; ++i) {
    Packet p = MakeData();
    p.ecn = Ecn::kEct0;
    q.Enqueue(std::move(p));
  }
  // First two admitted below threshold, last two marked.
  EXPECT_EQ(q.Dequeue(SimTime::Zero())->ecn, Ecn::kEct0);
  EXPECT_EQ(q.Dequeue(SimTime::Zero())->ecn, Ecn::kEct0);
  EXPECT_EQ(q.Dequeue(SimTime::Zero())->ecn, Ecn::kCe);
  EXPECT_EQ(q.Dequeue(SimTime::Zero())->ecn, Ecn::kCe);
  EXPECT_EQ(q.stats().ce_marked, 2u);
}

TEST(Queue, EcnIgnoresNotEct) {
  QueueDisc q(QueueDisc::Config{.capacity_packets = 10, .ecn_threshold_packets = 0});
  q.Enqueue(MakeData());  // NotEct by default
  EXPECT_EQ(q.Dequeue(SimTime::Zero())->ecn, Ecn::kNotEct);
  EXPECT_EQ(q.stats().ce_marked, 0u);
}

TEST(Queue, RuntimeResizeKeepsPackets) {
  QueueDisc q(QueueDisc::Config{.capacity_packets = 4});
  for (int i = 0; i < 4; ++i) q.Enqueue(MakeData());
  q.set_capacity(2);  // shrink below occupancy
  EXPECT_EQ(q.occupancy(), 4u);
  EXPECT_FALSE(q.Enqueue(MakeData()));
  q.set_capacity(50);
  EXPECT_TRUE(q.Enqueue(MakeData()));
}

TEST(Queue, TracksMaxOccupancy) {
  QueueDisc q(QueueDisc::Config{.capacity_packets = 8});
  for (int i = 0; i < 5; ++i) q.Enqueue(MakeData());
  q.Dequeue(SimTime::Zero());
  q.Dequeue(SimTime::Zero());
  EXPECT_EQ(q.stats().max_occupancy, 5u);
}

// ---------------------------------------------------------------------------
// Link
// ---------------------------------------------------------------------------

TEST(Link, SerializationPlusPropagation) {
  Simulator sim;
  CaptureSink sink;
  Link::Config lc;
  lc.rate_bps = 10'000'000'000;          // 9000B -> 7.2 us
  lc.propagation = SimTime::Micros(50);
  Link link(sim, lc, &sink);
  link.Enqueue(MakeData(9000));
  sim.Run();
  EXPECT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sim.now(), SimTime::Nanos(7200) + SimTime::Micros(50));
}

TEST(Link, BackToBackSerialization) {
  Simulator sim;
  CaptureSink sink;
  Link::Config lc;
  lc.rate_bps = 10'000'000'000;
  lc.propagation = SimTime::Zero();
  Link link(sim, lc, &sink);
  for (int i = 0; i < 3; ++i) link.Enqueue(MakeData(9000));
  sim.Run();
  EXPECT_EQ(sink.packets.size(), 3u);
  EXPECT_EQ(sim.now(), SimTime::Nanos(3 * 7200));
}

TEST(Link, DisabledHoldsQueue) {
  Simulator sim;
  CaptureSink sink;
  Link::Config lc;
  lc.rate_bps = 10'000'000'000;
  lc.propagation = SimTime::Zero();
  Link link(sim, lc, &sink);
  link.set_enabled(false);
  link.Enqueue(MakeData());
  sim.RunUntil(SimTime::Millis(1));
  EXPECT_TRUE(sink.packets.empty());
  link.set_enabled(true);
  sim.Run();
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(Link, DropsBeyondQueueCapacity) {
  Simulator sim;
  CaptureSink sink;
  Link::Config lc;
  lc.rate_bps = 1'000'000;  // slow: everything queues
  lc.queue.capacity_packets = 3;
  Link link(sim, lc, &sink);
  for (int i = 0; i < 10; ++i) link.Enqueue(MakeData(1000));
  // 1 in flight + 3 queued; 6 dropped.
  EXPECT_EQ(link.queue().stats().dropped, 6u);
  sim.Run();
  EXPECT_EQ(sink.packets.size(), 4u);
}

TEST(Link, ReorderJitterCanReorder) {
  Simulator sim;
  Random rng(9);
  CaptureSink sink;
  Link::Config lc;
  lc.rate_bps = 100'000'000'000;
  lc.propagation = SimTime::Micros(1);
  lc.reorder_jitter = SimTime::Micros(50);
  lc.queue.capacity_packets = 100;
  Link jlink(sim, lc, &sink, &rng);
  for (int i = 0; i < 50; ++i) {
    jlink.Enqueue(MakeData(1500));
  }
  sim.Run();
  ASSERT_EQ(sink.packets.size(), 50u);
  bool reordered = false;
  for (std::size_t i = 1; i < sink.packets.size(); ++i) {
    if (sink.packets[i].id < sink.packets[i - 1].id) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

// ---------------------------------------------------------------------------
// FabricPort
// ---------------------------------------------------------------------------

FabricPort::Config PortConfig() {
  FabricPort::Config fc;
  fc.voq.capacity_packets = 16;
  fc.initial_mode = NetworkMode{0, 10'000'000'000, SimTime::Micros(48), false};
  return fc;
}

NetworkMode CircuitMode() {
  return NetworkMode{1, 100'000'000'000, SimTime::Micros(18), true};
}

TEST(FabricPort, PacketModeTiming) {
  Simulator sim;
  CaptureSink sink;
  FabricPort port(sim, PortConfig(), &sink);
  port.Enqueue(MakeData(9000));
  sim.Run();
  EXPECT_EQ(sim.now(), SimTime::Nanos(7200) + SimTime::Micros(48));
}

TEST(FabricPort, ModeSwitchSpeedsUpLeftovers) {
  Simulator sim;
  CaptureSink sink;
  FabricPort port(sim, PortConfig(), &sink);
  port.SetBlackout(true);
  for (int i = 0; i < 10; ++i) port.Enqueue(MakeData(9000));
  port.SetMode(CircuitMode());
  port.SetBlackout(false);
  sim.Run();
  // 10 packets at 100G (720ns each) + 18us propagation: far faster than 10G.
  EXPECT_EQ(sink.packets.size(), 10u);
  EXPECT_LT(sim.now(), SimTime::Micros(30));
}

TEST(FabricPort, BlackoutPausesService) {
  Simulator sim;
  CaptureSink sink;
  FabricPort port(sim, PortConfig(), &sink);
  port.SetBlackout(true);
  port.Enqueue(MakeData());
  sim.RunUntil(SimTime::Millis(1));
  EXPECT_TRUE(sink.packets.empty());
  port.SetBlackout(false);
  sim.Run();
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(FabricPort, CircuitMarkStamped) {
  Simulator sim;
  CaptureSink sink;
  FabricPort port(sim, PortConfig(), &sink);
  port.Enqueue(MakeData());
  sim.Run();
  EXPECT_FALSE(sink.Pop().circuit_mark);
  port.SetMode(CircuitMode());
  port.Enqueue(MakeData());
  sim.Run();
  EXPECT_TRUE(sink.Pop().circuit_mark);
}

TEST(FabricPort, PinnedPacketWaitsForItsNetwork) {
  Simulator sim;
  CaptureSink sink;
  FabricPort port(sim, PortConfig(), &sink);  // packet mode (path 0)
  Packet p = MakeData();
  p.pinned_path = 1;  // circuit
  port.Enqueue(std::move(p));
  sim.RunUntil(SimTime::Millis(1));
  EXPECT_TRUE(sink.packets.empty());
  EXPECT_EQ(port.pinned_waiting(), 1u);
  port.SetMode(CircuitMode());
  sim.Run();
  EXPECT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(port.pinned_waiting(), 0u);
}

TEST(FabricPort, ModeChangeRestashesMismatchedPinned) {
  Simulator sim;
  CaptureSink sink;
  FabricPort::Config fc = PortConfig();
  fc.initial_mode = CircuitMode();
  FabricPort port(sim, fc, &sink);
  port.SetBlackout(true);  // hold everything in the VOQ
  Packet pinned = MakeData();
  pinned.pinned_path = 1;  // admitted: matches circuit mode
  port.Enqueue(std::move(pinned));
  Packet plain = MakeData();
  port.Enqueue(std::move(plain));
  // Circuit goes away: the pinned packet must go back to the stash, the
  // unpinned one stays in the VOQ and rides the packet network.
  port.SetMode(PortConfig().initial_mode);
  port.SetBlackout(false);
  sim.Run();
  EXPECT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(port.pinned_waiting(), 1u);
}

TEST(FabricPort, PinnedStashCapacityDrops) {
  Simulator sim;
  CaptureSink sink;
  FabricPort::Config fc = PortConfig();
  fc.pinned_stash_capacity = 2;
  FabricPort port(sim, fc, &sink);
  for (int i = 0; i < 5; ++i) {
    Packet p = MakeData();
    p.pinned_path = 1;
    port.Enqueue(std::move(p));
  }
  EXPECT_EQ(port.pinned_waiting(), 2u);
  EXPECT_EQ(port.pinned_dropped(), 3u);
}

// ---------------------------------------------------------------------------
// Host
// ---------------------------------------------------------------------------

TEST(Host, DispatchesByFlow) {
  Simulator sim;
  Host host(sim, 7);
  CaptureSink ep1, ep2;
  host.RegisterEndpoint(1, &ep1);
  host.RegisterEndpoint(2, &ep2);
  Packet p = MakeData();
  p.flow = 2;
  p.dst = 7;
  host.HandlePacket(std::move(p));
  EXPECT_TRUE(ep1.packets.empty());
  EXPECT_EQ(ep2.packets.size(), 1u);
}

TEST(Host, UnknownFlowCounted) {
  Simulator sim;
  Host host(sim, 7);
  Packet p = MakeData();
  p.flow = 99;
  host.HandlePacket(std::move(p));
  EXPECT_EQ(host.dropped_no_endpoint(), 1u);
}

TEST(Host, PullModelNotifiesAllAtOnce) {
  Simulator sim;
  Host host(sim, 0);
  int calls = 0;
  int o1, o2;
  host.AddTdnListener(&o1, [&](TdnId t, bool) { calls += t == 1 ? 1 : 0; });
  host.AddTdnListener(&o2, [&](TdnId t, bool) { calls += t == 1 ? 1 : 0; });
  Packet icmp;
  icmp.type = PacketType::kTdnNotify;
  icmp.notify_tdn = 1;
  host.HandlePacket(std::move(icmp));
  EXPECT_EQ(calls, 2);  // immediate, no events needed
}

TEST(Host, PushModelStaggersListeners) {
  Simulator sim;
  Host host(sim, 0);
  host.set_notify_distribution(NotifyDistribution{false, SimTime::Micros(2)});
  std::vector<SimTime> when(2);
  int o1, o2;
  host.AddTdnListener(&o1, [&](TdnId, bool) { when[0] = sim.now(); });
  host.AddTdnListener(&o2, [&](TdnId, bool) { when[1] = sim.now(); });
  Packet icmp;
  icmp.type = PacketType::kTdnNotify;
  icmp.notify_tdn = 1;
  host.HandlePacket(std::move(icmp));
  sim.Run();
  EXPECT_EQ(when[0], SimTime::Zero());
  EXPECT_EQ(when[1], SimTime::Micros(2));
}

TEST(Host, RemoveTdnListener) {
  Simulator sim;
  Host host(sim, 0);
  int calls = 0;
  int owner;
  host.AddTdnListener(&owner, [&](TdnId, bool) { ++calls; });
  host.RemoveTdnListener(&owner);
  Packet icmp;
  icmp.type = PacketType::kTdnNotify;
  icmp.notify_tdn = 1;
  host.HandlePacket(std::move(icmp));
  EXPECT_EQ(calls, 0);
}

// ---------------------------------------------------------------------------
// ToRSwitch + Topology
// ---------------------------------------------------------------------------

TEST(Topology, LocalAndRemoteRouting) {
  Simulator sim;
  Random rng(1);
  TopologyConfig tc;
  tc.hosts_per_rack = 2;
  Topology topo(sim, rng, tc);

  CaptureSink ep;
  topo.host(1, 0)->RegisterEndpoint(5, &ep);
  // Send from rack 0 host 0 to rack 1 host 0 (node id 2).
  Packet p = MakeData(9000, topo.host_id(1, 0));
  p.flow = 5;
  topo.host(0, 0)->Send(std::move(p));
  sim.Run();
  ASSERT_EQ(ep.packets.size(), 1u);
  EXPECT_EQ(ep.packets[0].src, topo.host_id(0, 0));
}

TEST(Topology, IntraRackDelivery) {
  Simulator sim;
  Random rng(1);
  TopologyConfig tc;
  tc.hosts_per_rack = 2;
  Topology topo(sim, rng, tc);
  CaptureSink ep;
  topo.host(0, 1)->RegisterEndpoint(3, &ep);
  Packet p = MakeData(9000, topo.host_id(0, 1));
  p.flow = 3;
  topo.host(0, 0)->Send(std::move(p));
  sim.Run();
  EXPECT_EQ(ep.packets.size(), 1u);
}

TEST(Topology, RackResolver) {
  Simulator sim;
  Random rng(1);
  TopologyConfig tc;
  tc.hosts_per_rack = 16;
  Topology topo(sim, rng, tc);
  EXPECT_EQ(topo.rack_of(0), 0u);
  EXPECT_EQ(topo.rack_of(15), 0u);
  EXPECT_EQ(topo.rack_of(16), 1u);
  EXPECT_EQ(topo.host_id(1, 3), 19u);
}

TEST(ToRSwitch, NotifyViaControlNetworkTiming) {
  Simulator sim;
  Random rng(1);
  NotifyGenConfig nc;  // cached, control network
  ToRSwitch tor(sim, 0, nc, &rng);
  Host h0(sim, 0), h1(sim, 1);
  std::vector<SimTime> when(2, SimTime::Max());
  int o0, o1;
  h0.AddTdnListener(&o0, [&](TdnId, bool) { when[0] = sim.now(); });
  h1.AddTdnListener(&o1, [&](TdnId, bool) { when[1] = sim.now(); });
  tor.AttachHost(0, nullptr, &h0);
  tor.AttachHost(1, nullptr, &h1);
  tor.NotifyHosts(1);
  sim.Run();
  // Host 0: ~0.5us gen (lognormal) + 1us control; host 1 strictly later
  // (its generation waits behind host 0's).
  EXPECT_GT(when[0], SimTime::Micros(1));
  EXPECT_LT(when[0], SimTime::Micros(20));
  EXPECT_GT(when[1], when[0]);
  EXPECT_EQ(tor.notifications_sent(), 2u);
}

TEST(ToRSwitch, FreshGenerationSlowerThanCached) {
  Simulator sim;
  Random rng(1);
  NotifyGenConfig cached;
  NotifyGenConfig fresh;
  fresh.cached_packet = false;
  ToRSwitch tor_cached(sim, 0, cached, &rng);
  ToRSwitch tor_fresh(sim, 1, fresh, &rng);
  Host h(sim, 0);
  tor_cached.AttachHost(0, nullptr, &h);
  tor_fresh.AttachHost(0, nullptr, &h);
  double cached_sum = 0, fresh_sum = 0;
  for (int i = 0; i < 200; ++i) {
    tor_cached.NotifyHosts(0);
    cached_sum += tor_cached.last_notify_latency()[0].micros_f();
    tor_fresh.NotifyHosts(0);
    fresh_sum += tor_fresh.last_notify_latency()[0].micros_f();
  }
  EXPECT_GT(fresh_sum, cached_sum * 4);  // ~8x at the median per §5.4
}

TEST(ToRSwitch, DataPlaneDeliveryRidesDownlink) {
  Simulator sim;
  Random rng(1);
  NotifyGenConfig nc;
  nc.via_control_network = false;
  ToRSwitch tor(sim, 0, nc, &rng);
  Host h(sim, 0);
  CaptureSink sink;
  Link::Config lc;
  lc.rate_bps = 1'000'000;  // slow downlink: ICMP queues behind it
  Link down(sim, lc, &h);
  bool notified = false;
  int owner;
  h.AddTdnListener(&owner, [&](TdnId, bool) { notified = true; });
  tor.AttachHost(0, &down, &h);
  // Pre-fill the downlink with a data packet; the ICMP must wait.
  down.Enqueue(MakeData(9000, 0));
  tor.NotifyHosts(1);
  sim.RunUntil(SimTime::Micros(100));
  EXPECT_FALSE(notified);  // still serializing the data packet (72ms at 1Mbps)
  sim.Run();
  EXPECT_TRUE(notified);
}

}  // namespace
}  // namespace tdtcp
