// Queue-discipline conformance suite (net/queue_disc).
//
// Every discipline must honor the same structural contract the paper's VOQ
// relies on — capacity bound, drain-then-shrink deferral, FIFO delivery of
// survivors, ECN capability respected, zero steady-state allocation — and
// the time-based disciplines (CoDel, delay-mark) and the shared-pool DT
// admission each get behavioral tests of their own. The suite closes with
// the sweep-level guarantees: the qdisc axis stays bit-identical across
// job counts (FNV trace hashes compared bitwise) and CoDel keeps the p99
// VOQ sojourn below drop-tail's under the same incast-style overload.
#include <gtest/gtest.h>

#include <vector>

#include "alloc_harness.hpp"
#include "app/sweep.hpp"
#include "net/queue_disc.hpp"

namespace tdtcp {
namespace {

const QdiscKind kAllKinds[] = {QdiscKind::kDropTail, QdiscKind::kCodel,
                               QdiscKind::kDelayMark, QdiscKind::kSharedPool};

Packet MakePkt(std::uint64_t id, Ecn ecn = Ecn::kEct0,
               SimTime enq = SimTime::Zero()) {
  Packet p;
  p.id = id;
  p.type = PacketType::kData;
  p.size_bytes = 9000;
  p.payload = 8940;
  p.ecn = ecn;
  p.enqueue_time = enq;
  return p;
}

// ---------------------------------------------------------------------------
// Name mapping
// ---------------------------------------------------------------------------

TEST(QdiscNames, RoundTripAndReject) {
  for (QdiscKind k : kAllKinds) {
    EXPECT_EQ(QdiscKindFromName(QdiscKindName(k)), k);
  }
  EXPECT_THROW(QdiscKindFromName("red"), std::invalid_argument);
  EXPECT_THROW(QdiscKindFromName(""), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Conformance: the contract every discipline must keep
// ---------------------------------------------------------------------------

TEST(QdiscConformance, CapacityBoundNeverExceeded) {
  for (QdiscKind k : kAllKinds) {
    QueueDisc q(QueueDisc::Config{.kind = k, .capacity_packets = 4});
    for (std::uint64_t i = 0; i < 10; ++i) {
      q.Enqueue(MakePkt(i));
      EXPECT_LE(q.occupancy(), 4u) << QdiscKindName(k);
      EXPECT_TRUE(q.WithinBound()) << QdiscKindName(k);
    }
    EXPECT_EQ(q.occupancy(), 4u) << QdiscKindName(k);
    EXPECT_EQ(q.stats().dropped, 6u) << QdiscKindName(k);
    EXPECT_FALSE(q.CanEnqueue()) << QdiscKindName(k);
  }
}

TEST(QdiscConformance, DrainThenShrinkDefersExcess) {
  for (QdiscKind k : kAllKinds) {
    QueueDisc q(QueueDisc::Config{.kind = k, .capacity_packets = 12});
    for (std::uint64_t i = 0; i < 12; ++i) {
      ASSERT_TRUE(q.Enqueue(MakePkt(i))) << QdiscKindName(k);
    }
    q.set_capacity(4);
    // The 8 excess packets were admitted under the larger promise: they are
    // retained (counted), admissions stop, and the bound becomes the
    // pre-shrink watermark until the queue drains below the new capacity.
    EXPECT_EQ(q.occupancy(), 12u) << QdiscKindName(k);
    EXPECT_EQ(q.stats().shrink_deferred, 8u) << QdiscKindName(k);
    EXPECT_TRUE(q.WithinBound()) << QdiscKindName(k);
    EXPECT_FALSE(q.Enqueue(MakePkt(99))) << QdiscKindName(k);
    while (q.occupancy() >= 4) {
      ASSERT_TRUE(q.Dequeue(SimTime::Zero()).has_value()) << QdiscKindName(k);
      EXPECT_TRUE(q.WithinBound()) << QdiscKindName(k);
    }
    // Back under the new capacity: normal admission resumes and the bound
    // is the plain capacity again.
    EXPECT_TRUE(q.Enqueue(MakePkt(100))) << QdiscKindName(k);
    EXPECT_LE(q.occupancy(), 4u) << QdiscKindName(k);
  }
}

TEST(QdiscConformance, SurvivorsLeaveInFifoOrder) {
  // Zero sojourn (dequeue at the enqueue timestamp) keeps every time-based
  // discipline quiescent, so all four must behave as pure FIFO.
  for (QdiscKind k : kAllKinds) {
    QueueDisc q(QueueDisc::Config{.kind = k, .capacity_packets = 8});
    for (std::uint64_t i = 0; i < 8; ++i) q.Enqueue(MakePkt(i));
    for (std::uint64_t i = 0; i < 8; ++i) {
      std::optional<Packet> p = q.Dequeue(SimTime::Zero());
      ASSERT_TRUE(p.has_value()) << QdiscKindName(k);
      EXPECT_EQ(p->id, i) << QdiscKindName(k);
    }
    EXPECT_TRUE(q.Empty()) << QdiscKindName(k);
  }
}

TEST(QdiscConformance, NotEctPacketsAreNeverMarked) {
  // Aggressive marking configs under every discipline: a packet that did
  // not negotiate ECN must come out unmarked (CoDel drops it instead; the
  // others deliver it untouched).
  for (QdiscKind k : kAllKinds) {
    QueueDisc q(QueueDisc::Config{.kind = k,
                                  .capacity_packets = 32,
                                  .ecn_threshold_packets = 0,
                                  .codel_target = SimTime::Micros(1),
                                  .codel_interval = SimTime::Micros(2),
                                  .codel_ecn = true,
                                  .delay_mark_threshold = SimTime::Micros(1)});
    for (std::uint64_t i = 0; i < 16; ++i) q.Enqueue(MakePkt(i, Ecn::kNotEct));
    SimTime now = SimTime::Millis(1);  // huge sojourn: everything is "late"
    while (!q.Empty()) {
      std::optional<Packet> p = q.Dequeue(now);
      now = now + SimTime::Micros(50);
      if (p) {
        EXPECT_NE(p->ecn, Ecn::kCe) << QdiscKindName(k);
      }
    }
    EXPECT_EQ(q.stats().ce_marked, 0u) << QdiscKindName(k);
  }
}

TEST(QdiscConformance, OccupancyEcnMarkingComposesWithEveryKind) {
  // DCTCP's occupancy-threshold marker runs under every discipline.
  for (QdiscKind k : kAllKinds) {
    QueueDisc q(QueueDisc::Config{
        .kind = k, .capacity_packets = 10, .ecn_threshold_packets = 2});
    for (std::uint64_t i = 0; i < 5; ++i) q.Enqueue(MakePkt(i));
    // Packets 0,1 admitted below K; 2,3,4 at/above K are CE-marked.
    EXPECT_EQ(q.stats().ce_marked, 3u) << QdiscKindName(k);
  }
}

TEST(QdiscConformance, SteadyStateNeverAllocates) {
  for (QdiscKind k : kAllKinds) {
    SharedBufferPool pool{64, 0};
    QueueDisc q(QueueDisc::Config{.kind = k,
                                  .capacity_packets = 32,
                                  .codel_target = SimTime::Micros(10),
                                  .codel_interval = SimTime::Micros(100)});
    if (k == QdiscKind::kSharedPool) q.AttachSharedPool(&pool);
    // Warm-up: reach the high-water mark once so the ring is fully grown.
    for (std::uint64_t i = 0; i < 32; ++i) q.Enqueue(MakePkt(i));
    while (!q.Empty()) q.Dequeue(SimTime::Micros(200));
    // Steady state: overload churn (enqueues, drops, CoDel state, marks,
    // resizes within the watermark) must not touch the allocator.
    const auto delta = test::CountAllocations([&] {
      SimTime now = SimTime::Zero();
      for (std::uint64_t i = 0; i < 2000; ++i) {
        q.Enqueue(MakePkt(i, i % 2 ? Ecn::kEct0 : Ecn::kNotEct, now));
        if (i % 3 == 0) q.Dequeue(now + SimTime::Micros(120));
        if (i % 512 == 0) {
          q.set_capacity(16);
          q.set_capacity(32);
        }
        now = now + SimTime::Micros(1);
      }
      while (!q.Empty()) q.Dequeue(SimTime::Millis(10));
    });
    EXPECT_EQ(delta.news, 0u) << QdiscKindName(k);
  }
}

// ---------------------------------------------------------------------------
// CoDel
// ---------------------------------------------------------------------------

// Feeds an overloaded queue: arrivals at 2/us, service at 1/us, so a
// standing queue forms immediately and only the discipline limits sojourn.
struct OverloadResult {
  std::uint64_t delivered = 0;
  std::uint32_t final_occupancy = 0;
  QueueDisc::Stats stats;
};

OverloadResult RunOverload(QueueDisc::Config cfg, int service_ticks = 4000) {
  QueueDisc q(cfg);
  OverloadResult r;
  std::uint64_t id = 0;
  SimTime now = SimTime::Zero();
  for (int t = 0; t < service_ticks; ++t) {
    q.Enqueue(MakePkt(id++, Ecn::kEct0, now));
    q.Enqueue(MakePkt(id++, Ecn::kEct0, now));
    if (q.Dequeue(now).has_value()) ++r.delivered;
    now = now + SimTime::Micros(1);
  }
  r.final_occupancy = q.occupancy();
  r.stats = q.stats();
  return r;
}

// Deep buffer + CoDel knobs tight enough that the control law converges
// within a few-ms test (target ~ a packet service time, interval ~ 10x).
QueueDisc::Config OverloadCodel() {
  return {.kind = QdiscKind::kCodel,
          .capacity_packets = 256,
          .codel_target = SimTime::Micros(10),
          .codel_interval = SimTime::Micros(100)};
}

// Histogram difference `after - warmup`: the steady-state sojourn
// distribution, excluding the transient while CoDel's control law is still
// ramping up against an already-standing queue.
QueueDisc::Stats SteadyState(const QueueDisc::Stats& warmup,
                             const QueueDisc::Stats& after) {
  QueueDisc::Stats d = after;
  d.sojourn_count -= warmup.sojourn_count;
  for (std::size_t b = 0; b < QueueDisc::Stats::kSojournBuckets; ++b) {
    d.sojourn_hist[b] -= warmup.sojourn_hist[b];
  }
  return d;
}

TEST(Codel, DropsDissolveAStandingQueue) {
  // Tighter interval than OverloadCodel(): dissolving a 2:1 overload needs
  // the drop rate (sqrt(count)/interval) to exceed the arrival excess, and
  // the test should get there in well under a millisecond.
  auto run = [](QdiscKind k) {
    QueueDisc q(QueueDisc::Config{.kind = k,
                                  .capacity_packets = 256,
                                  .codel_target = SimTime::Micros(5),
                                  .codel_interval = SimTime::Micros(20)});
    std::uint64_t id = 0;
    SimTime now = SimTime::Zero();
    QueueDisc::Stats warmup;
    for (int t = 0; t < 8000; ++t) {
      q.Enqueue(MakePkt(id++, Ecn::kEct0, now));
      q.Enqueue(MakePkt(id++, Ecn::kEct0, now));
      q.Dequeue(now);
      now = now + SimTime::Micros(1);
      if (t == 3999) warmup = q.stats();
    }
    return SteadyState(warmup, q.stats());
  };
  const QueueDisc::Stats codel = run(QdiscKind::kCodel);
  const QueueDisc::Stats droptail = run(QdiscKind::kDropTail);
  EXPECT_GT(codel.codel_drops, 0u);
  EXPECT_EQ(droptail.codel_drops, 0u);
  // The point of CoDel: the standing queue is held near the target, so the
  // steady-state sojourn sits far below drop-tail's full-buffer delay.
  EXPECT_LT(codel.SojournPercentileUs(99), droptail.SojournPercentileUs(99));
}

TEST(Codel, ControlLawAcceleratesWhileAboveTarget) {
  // Under persistent overload the drop count must grow faster than
  // linearly in time: successive drops at interval/sqrt(count) spacing.
  const OverloadResult half = RunOverload(OverloadCodel(), 2000);
  const OverloadResult full = RunOverload(OverloadCodel(), 4000);
  ASSERT_GT(half.stats.codel_drops, 0u);
  EXPECT_GT(full.stats.codel_drops, 2 * half.stats.codel_drops);
}

TEST(Codel, EcnModeMarksInsteadOfDropping) {
  QueueDisc::Config ecn = OverloadCodel();
  ecn.codel_ecn = true;
  const OverloadResult marked = RunOverload(ecn);
  EXPECT_EQ(marked.stats.codel_drops, 0u);
  EXPECT_GT(marked.stats.codel_marks, 0u);
  // Marks advance the same state machine the drops would have (the queue
  // stays saturated under this overload, so the timing is identical).
  const OverloadResult dropped = RunOverload(OverloadCodel());
  EXPECT_EQ(marked.stats.codel_marks, dropped.stats.codel_drops);
  // Marks land on delivered packets (counted in the CE total), and marking
  // sheds nothing: every admitted packet was delivered or is still queued.
  EXPECT_GE(marked.stats.ce_marked, marked.stats.codel_marks);
  EXPECT_EQ(marked.stats.enqueued,
            marked.stats.sojourn_count + marked.final_occupancy);
  // Drop mode consumes from the backlog instead.
  EXPECT_EQ(dropped.stats.enqueued,
            dropped.stats.sojourn_count + dropped.stats.codel_drops +
                dropped.final_occupancy);
}

TEST(Codel, ExitsDroppingStateWhenSojournRecovers) {
  QueueDisc q(QueueDisc::Config{.kind = QdiscKind::kCodel,
                                .capacity_packets = 64});
  // Phase 1: standing queue long enough to enter the dropping state.
  SimTime now = SimTime::Zero();
  std::uint64_t id = 0;
  for (int t = 0; t < 2000; ++t) {
    q.Enqueue(MakePkt(id++, Ecn::kEct0, now));
    q.Enqueue(MakePkt(id++, Ecn::kEct0, now));
    q.Dequeue(now);
    now = now + SimTime::Micros(1);
  }
  ASSERT_GT(q.stats().codel_drops, 0u);
  while (!q.Empty()) q.Dequeue(now);
  const std::uint64_t drops_after_phase1 = q.stats().codel_drops;
  // Phase 2: light load, sojourn always zero — no further drops ever.
  for (int t = 0; t < 1000; ++t) {
    q.Enqueue(MakePkt(id++, Ecn::kEct0, now));
    EXPECT_TRUE(q.Dequeue(now).has_value());
    now = now + SimTime::Micros(1);
  }
  EXPECT_EQ(q.stats().codel_drops, drops_after_phase1);
}

// ---------------------------------------------------------------------------
// Delay-mark
// ---------------------------------------------------------------------------

TEST(DelayMark, MarksOnlyAboveThreshold) {
  QueueDisc q(QueueDisc::Config{.kind = QdiscKind::kDelayMark,
                                .capacity_packets = 8,
                                .delay_mark_threshold = SimTime::Micros(50)});
  q.Enqueue(MakePkt(0, Ecn::kEct0, SimTime::Zero()));
  q.Enqueue(MakePkt(1, Ecn::kEct0, SimTime::Zero()));
  // Sojourn 10us < 50us: delivered clean.
  std::optional<Packet> fast = q.Dequeue(SimTime::Micros(10));
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(fast->ecn, Ecn::kEct0);
  // Sojourn 80us >= 50us: CE-marked, counted in both breakdowns.
  std::optional<Packet> slow = q.Dequeue(SimTime::Micros(80));
  ASSERT_TRUE(slow.has_value());
  EXPECT_EQ(slow->ecn, Ecn::kCe);
  EXPECT_EQ(q.stats().delay_marked, 1u);
  EXPECT_EQ(q.stats().ce_marked, 1u);
  // Delay-marking never drops.
  EXPECT_EQ(q.stats().dropped, 0u);
}

// ---------------------------------------------------------------------------
// Shared-pool dynamic threshold
// ---------------------------------------------------------------------------

TEST(SharedPool, QueuesCompeteForOnePool) {
  SharedBufferPool pool{8, 0};
  QueueDisc a(QueueDisc::Config{.kind = QdiscKind::kSharedPool,
                                .capacity_packets = 8,
                                .shared_alpha = 1.0});
  QueueDisc b(a.config());
  a.AttachSharedPool(&pool);
  b.AttachSharedPool(&pool);
  // A hogs the pool: DT admits while occupancy < alpha * free. With
  // alpha=1 and an 8-packet pool, A stops once occupancy >= free.
  std::uint64_t id = 0;
  while (a.CanEnqueue()) ASSERT_TRUE(a.Enqueue(MakePkt(id++)));
  EXPECT_EQ(a.occupancy(), 4u);  // occ 4, free 4: 4 < 4 fails
  EXPECT_EQ(pool.used, 4u);
  // B sees the depleted pool: its own threshold is alpha * free = 4, but
  // every admission shrinks free, so it stops earlier than A did.
  while (b.CanEnqueue()) ASSERT_TRUE(b.Enqueue(MakePkt(id++)));
  EXPECT_LT(b.occupancy(), a.occupancy());
  EXPECT_FALSE(b.Enqueue(MakePkt(id++)));
  EXPECT_EQ(b.stats().shared_rejected, 1u);
  EXPECT_GT(b.stats().dropped, 0u);
  // Draining A releases pool space and reopens B's admission.
  const std::uint32_t before = pool.used;
  for (int i = 0; i < 3; ++i) a.Dequeue(SimTime::Zero());
  EXPECT_EQ(pool.used, before - 3);
  EXPECT_TRUE(b.CanEnqueue());
  EXPECT_TRUE(b.Enqueue(MakePkt(id++)));
}

TEST(SharedPool, AlphaScalesTheThreshold) {
  SharedBufferPool pool{16, 0};
  QueueDisc strict(QueueDisc::Config{.kind = QdiscKind::kSharedPool,
                                     .capacity_packets = 16,
                                     .shared_alpha = 0.25});
  strict.AttachSharedPool(&pool);
  std::uint64_t id = 0;
  while (strict.CanEnqueue()) ASSERT_TRUE(strict.Enqueue(MakePkt(id++)));
  // occ < 0.25 * free: admits 0,1,2 (free 16,15,14 -> thresholds 4,3.75,3.5)
  // and stops at occ 3 vs 0.25*13 = 3.25... admit; occ 4 vs 0.25*12 = 3: stop.
  EXPECT_LT(strict.occupancy(), 8u);
  EXPECT_GT(strict.occupancy(), 0u);
}

TEST(SharedPool, NoPoolDegradesToDropTail) {
  QueueDisc q(QueueDisc::Config{.kind = QdiscKind::kSharedPool,
                                .capacity_packets = 4});
  for (std::uint64_t i = 0; i < 6; ++i) q.Enqueue(MakePkt(i));
  EXPECT_EQ(q.occupancy(), 4u);
  EXPECT_EQ(q.stats().dropped, 2u);
  EXPECT_EQ(q.stats().shared_rejected, 0u);
}

TEST(SharedPool, PopRawAndRestoreKeepPoolAccounting) {
  SharedBufferPool pool{8, 0};
  QueueDisc q(QueueDisc::Config{.kind = QdiscKind::kSharedPool,
                                .capacity_packets = 8});
  q.AttachSharedPool(&pool);
  for (std::uint64_t i = 0; i < 3; ++i) q.Enqueue(MakePkt(i));
  EXPECT_EQ(pool.used, 3u);
  std::optional<Packet> p = q.PopRaw();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(pool.used, 2u);
  q.Restore(std::move(*p));
  EXPECT_EQ(pool.used, 3u);
  // Structural ops left the sojourn stats untouched.
  EXPECT_EQ(q.stats().sojourn_count, 0u);
}

// ---------------------------------------------------------------------------
// Sojourn histogram
// ---------------------------------------------------------------------------

TEST(SojournStats, HistogramPercentilesBracketTheSamples) {
  QueueDisc q(QueueDisc::Config{.capacity_packets = 128});
  // 90 sojourns of ~3us, 10 of ~300us.
  for (std::uint64_t i = 0; i < 90; ++i) q.Enqueue(MakePkt(i));
  for (std::uint64_t i = 0; i < 90; ++i) q.Dequeue(SimTime::Micros(3));
  for (std::uint64_t i = 0; i < 10; ++i) {
    q.Enqueue(MakePkt(100 + i, Ecn::kEct0, SimTime::Zero()));
  }
  for (std::uint64_t i = 0; i < 10; ++i) q.Dequeue(SimTime::Micros(300));
  EXPECT_EQ(q.stats().sojourn_count, 100u);
  // p50 lands in the [2,4)us bucket (upper edge 4); p99 in [256,512).
  EXPECT_EQ(q.stats().SojournPercentileUs(50), 4.0);
  EXPECT_EQ(q.stats().SojournPercentileUs(99), 512.0);
  EXPECT_EQ(q.stats().max_sojourn, SimTime::Micros(300));
  EXPECT_NEAR(q.stats().mean_sojourn_us(), 0.9 * 3 + 0.1 * 300, 1.0);
}

// ---------------------------------------------------------------------------
// Sweep integration: qdisc axis determinism across job counts
// ---------------------------------------------------------------------------

ExperimentConfig TinyConfig(Variant v = Variant::kTdtcp) {
  return PaperConfig(v)
      .WithFlows(2)
      .WithDuration(SimTime::Micros(2800))
      .WithWarmup(SimTime::Micros(1400))
      .WithSampling(false, false)
      .WithPlotWeeks(1);
}

TEST(QdiscSweep, AxisIsBitIdenticalAcrossJobCounts) {
  SweepSpec spec;
  spec.base = TinyConfig();
  spec.variants = {Variant::kTdtcp};
  spec.seeds = {1, 2};
  spec.qdiscs = {{"droptail", {.kind = QdiscKind::kDropTail}},
                 {"codel", {.kind = QdiscKind::kCodel}},
                 {"delaymark", {.kind = QdiscKind::kDelayMark}},
                 {"sharedpool", {.kind = QdiscKind::kSharedPool}}};
  spec.jobs = 1;
  const SweepResult serial = RunSweep(spec);
  spec.jobs = 4;
  const SweepResult parallel = RunSweep(spec);
  ASSERT_EQ(serial.cells.size(), 4u);
  ASSERT_EQ(parallel.cells.size(), 4u);
  for (std::size_t c = 0; c < serial.cells.size(); ++c) {
    const SweepCell& sc = serial.cells[c];
    const SweepCell& pc = parallel.cells[c];
    EXPECT_EQ(sc.qdisc_label, spec.qdiscs[c].label);
    EXPECT_EQ(sc.qdisc_label, pc.qdisc_label);
    for (std::size_t r = 0; r < sc.runs.size(); ++r) {
      // FNV-1a over the full event trace: one hash mismatch means any
      // divergence anywhere in the run. Bitwise, not approximate.
      EXPECT_EQ(sc.runs[r].result.trace_hash, pc.runs[r].result.trace_hash);
      const auto sm = ScalarMetrics(sc.runs[r].result);
      const auto pm = ScalarMetrics(pc.runs[r].result);
      ASSERT_EQ(sm.size(), pm.size());
      for (std::size_t m = 0; m < sm.size(); ++m) {
        EXPECT_EQ(sm[m].first, pm[m].first);
        EXPECT_EQ(sm[m].second, pm[m].second) << sm[m].first;
      }
    }
  }
}

TEST(QdiscSweep, DisciplinesProduceDistinctProfiles) {
  // The axis must actually change behavior: under the same config and seed,
  // at least the per-discipline counters must differ from drop-tail's.
  // DCTCP negotiates ECN, so its data packets are ECT(0) — the marking
  // disciplines have something to mark.
  ExperimentConfig base = TinyConfig(Variant::kDctcp).WithFlows(4);
  base.topology.voq.ecn_threshold_packets = 8;
  const ExperimentResult dt = RunExperiment(base);
  ExperimentConfig codel = base;
  codel.WithQdisc(QdiscKind::kCodel);
  codel.topology.voq.codel_ecn = true;
  // The default 500us interval is ~a third of this tiny run's measured
  // window; tighten so the control law can establish itself.
  codel.topology.voq.codel_target = SimTime::Micros(5);
  codel.topology.voq.codel_interval = SimTime::Micros(50);
  const ExperimentResult cd = RunExperiment(codel);
  ExperimentConfig dm = base;
  dm.WithQdisc(QdiscKind::kDelayMark);
  dm.topology.voq.delay_mark_threshold = SimTime::Micros(1);
  const ExperimentResult dmr = RunExperiment(dm);
  EXPECT_EQ(dt.voq_codel_marks, 0u);
  EXPECT_EQ(dt.voq_delay_marked, 0u);
  EXPECT_EQ(cd.voq_delay_marked, 0u);
  EXPECT_EQ(dmr.voq_codel_marks, 0u);
  // Each non-default discipline leaves its fingerprint under load.
  EXPECT_GT(cd.voq_codel_marks + cd.voq_codel_drops, 0u);
  EXPECT_GT(dmr.voq_delay_marked, 0u);
}

// ---------------------------------------------------------------------------
// Incast regression: CoDel vs drop-tail sojourn under the same load
// ---------------------------------------------------------------------------

TEST(IncastRegression, CodelKeepsP99SojournBelowDropTail) {
  // Incast-shaped arrival: synchronized bursts of 32 packets into one VOQ
  // serviced at 1 packet/us — the N-to-1 pattern bench_incast times at
  // full scale. Same arrivals, same service, only the discipline differs.
  auto run = [](QdiscKind k) {
    QueueDisc q(QueueDisc::Config{.kind = k,
                                  .capacity_packets = 256,
                                  .codel_target = SimTime::Micros(5),
                                  .codel_interval = SimTime::Micros(20)});
    std::uint64_t id = 0;
    SimTime now = SimTime::Zero();
    QueueDisc::Stats warmup;
    for (int burst = 0; burst < 80; ++burst) {
      for (int i = 0; i < 80; ++i) q.Enqueue(MakePkt(id++, Ecn::kEct0, now));
      for (int t = 0; t < 40; ++t) {  // 40us of service between bursts
        q.Dequeue(now);
        now = now + SimTime::Micros(1);
      }
      // The first half covers CoDel's ramp against the initial pile-up;
      // measure the steady incast pattern after it.
      if (burst == 39) warmup = q.stats();
    }
    return SteadyState(warmup, q.stats());
  };
  const QueueDisc::Stats codel = run(QdiscKind::kCodel);
  const QueueDisc::Stats droptail = run(QdiscKind::kDropTail);
  ASSERT_GT(codel.sojourn_count, 0u);
  ASSERT_GT(droptail.sojourn_count, 0u);
  EXPECT_LT(codel.SojournPercentileUs(99), droptail.SojournPercentileUs(99));
  // The price is drops; the gain is bounded delay.
  EXPECT_GT(codel.codel_drops, 0u);
}

}  // namespace
}  // namespace tdtcp
