// The tentpole claim of the allocation-free event core, asserted directly:
// after warmup, neither a self-rescheduling timer nor a link/queue packet
// ping-pong touches the global heap. Counting overloads of operator
// new/delete make any steady-state allocation a test failure, not a perf
// regression to chase later.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace {

std::uint64_t g_news = 0;
std::uint64_t g_deletes = 0;

}  // namespace

// Counting global allocator. The counters are plain integers (this test
// binary is single-threaded); all forms funnel through malloc/free so the
// aligned overloads used by the event core's heap buffer are counted too.
void* operator new(std::size_t n) {
  ++g_news;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t al) {
  ++g_news;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept {
  ++g_deletes;
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  ++g_deletes;
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  ++g_deletes;
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ++g_deletes;
  std::free(p);
}

namespace tdtcp {
namespace {

struct AllocDelta {
  std::uint64_t news;
  std::uint64_t deletes;
};

template <typename F>
AllocDelta CountAllocations(F&& f) {
  const std::uint64_t n0 = g_news;
  const std::uint64_t d0 = g_deletes;
  f();
  return AllocDelta{g_news - n0, g_deletes - d0};
}

// Raw functor timer: no std::function anywhere on the path.
struct Tick {
  Simulator& sim;
  std::int64_t& fires;
  std::int64_t limit;
  void operator()() const {
    if (++fires < limit) sim.Schedule(SimTime::Nanos(100), Tick{*this});
  }
};

TEST(AllocFree, SelfReschedulingTimerSteadyState) {
  Simulator sim;
  std::int64_t fires = 0;
  // Warmup: first fires grow the slot slab, heap buffer, and lane.
  sim.Schedule(SimTime::Nanos(100), Tick{sim, fires, 1000});
  sim.Run();
  ASSERT_EQ(fires, 1000);

  fires = 0;
  const AllocDelta d = CountAllocations([&] {
    sim.Schedule(SimTime::Nanos(100), Tick{sim, fires, 100000});
    sim.Run();
  });
  EXPECT_EQ(fires, 100000);
  EXPECT_EQ(d.news, 0u) << "timer steady state allocated";
  EXPECT_EQ(d.deletes, 0u);
}

// Two links forwarding into each other through a bouncing sink: the
// Link -> Queue -> event -> deliver -> Link cycle exercises the packet
// freelist and the zero-copy handoff.
struct Bouncer : PacketSink {
  Link* out = nullptr;
  std::uint64_t received = 0;
  std::uint64_t limit = 0;
  void HandlePacket(Packet&& p) override {
    ++received;
    if (received < limit) out->Enqueue(std::move(p));
  }
};

TEST(AllocFree, LinkPacketPingPongSteadyState) {
  Simulator sim;
  Bouncer east_sink, west_sink;
  Link::Config lc;
  lc.rate_bps = 100'000'000'000;
  lc.propagation = SimTime::Micros(1);
  Link east(sim, lc, &east_sink);
  Link west(sim, lc, &west_sink);
  east_sink.out = &west;  // arrived east -> bounce back west
  west_sink.out = &east;
  east_sink.limit = west_sink.limit = 1u << 30;

  Packet p;
  p.id = 1;
  p.size_bytes = 9000;
  p.payload = 8940;

  // Warmup bounces grow every pool involved.
  east.Enqueue(Packet(p));
  sim.RunUntil(SimTime::Millis(1));
  ASSERT_GT(east_sink.received + west_sink.received, 100u);

  const AllocDelta d = CountAllocations([&] {
    sim.RunFor(SimTime::Millis(10));
  });
  EXPECT_GT(east_sink.received + west_sink.received, 1000u);
  EXPECT_EQ(d.news, 0u) << "packet path steady state allocated";
  EXPECT_EQ(d.deletes, 0u);
  EXPECT_LE(sim.stashed_packets(), 1u);  // at most the one in flight
}

}  // namespace
}  // namespace tdtcp
