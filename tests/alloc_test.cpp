// The tentpole claim of the allocation-free event core, asserted directly:
// after warmup, neither a self-rescheduling timer nor a link/queue packet
// ping-pong touches the global heap. The counting allocator lives in
// alloc_harness.hpp (shared with tracepoint_test's disabled-path check);
// any steady-state allocation is a test failure, not a perf regression to
// chase later.
#include <gtest/gtest.h>

#include <cstdint>

#include "alloc_harness.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace tdtcp {
namespace {

using test::AllocDelta;
using test::CountAllocations;

// Raw functor timer: no std::function anywhere on the path.
struct Tick {
  Simulator& sim;
  std::int64_t& fires;
  std::int64_t limit;
  void operator()() const {
    if (++fires < limit) sim.Schedule(SimTime::Nanos(100), Tick{*this});
  }
};

TEST(AllocFree, SelfReschedulingTimerSteadyState) {
  Simulator sim;
  std::int64_t fires = 0;
  // Warmup: first fires grow the slot slab, heap buffer, and lane.
  sim.Schedule(SimTime::Nanos(100), Tick{sim, fires, 1000});
  sim.Run();
  ASSERT_EQ(fires, 1000);

  fires = 0;
  const AllocDelta d = CountAllocations([&] {
    sim.Schedule(SimTime::Nanos(100), Tick{sim, fires, 100000});
    sim.Run();
  });
  EXPECT_EQ(fires, 100000);
  EXPECT_EQ(d.news, 0u) << "timer steady state allocated";
  EXPECT_EQ(d.deletes, 0u);
}

// Two links forwarding into each other through a bouncing sink: the
// Link -> Queue -> event -> deliver -> Link cycle exercises the packet
// freelist and the zero-copy handoff.
struct Bouncer : PacketSink {
  Link* out = nullptr;
  std::uint64_t received = 0;
  std::uint64_t limit = 0;
  void HandlePacket(Packet&& p) override {
    ++received;
    if (received < limit) out->Enqueue(std::move(p));
  }
};

TEST(AllocFree, LinkPacketPingPongSteadyState) {
  Simulator sim;
  Bouncer east_sink, west_sink;
  Link::Config lc;
  lc.rate_bps = 100'000'000'000;
  lc.propagation = SimTime::Micros(1);
  Link east(sim, lc, &east_sink);
  Link west(sim, lc, &west_sink);
  east_sink.out = &west;  // arrived east -> bounce back west
  west_sink.out = &east;
  east_sink.limit = west_sink.limit = 1u << 30;

  Packet p;
  p.id = 1;
  p.size_bytes = 9000;
  p.payload = 8940;

  // Warmup bounces grow every pool involved.
  east.Enqueue(Packet(p));
  sim.RunUntil(SimTime::Millis(1));
  ASSERT_GT(east_sink.received + west_sink.received, 100u);

  const AllocDelta d = CountAllocations([&] {
    sim.RunFor(SimTime::Millis(10));
  });
  EXPECT_GT(east_sink.received + west_sink.received, 1000u);
  EXPECT_EQ(d.news, 0u) << "packet path steady state allocated";
  EXPECT_EQ(d.deletes, 0u);
  EXPECT_LE(sim.stashed_packets(), 1u);  // at most the one in flight
}

}  // namespace
}  // namespace tdtcp
