// The tentpole claim of the allocation-free event core, asserted directly:
// after warmup, neither a self-rescheduling timer nor a link/queue packet
// ping-pong touches the global heap. The counting allocator lives in
// alloc_harness.hpp (shared with tracepoint_test's disabled-path check);
// any steady-state allocation is a test failure, not a perf regression to
// chase later.
#include <gtest/gtest.h>

#include <cstdint>

#include "alloc_harness.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"
#include "test_util.hpp"

namespace tdtcp {
namespace {

using test::AllocDelta;
using test::CountAllocations;

// Raw functor timer: no std::function anywhere on the path.
struct Tick {
  Simulator& sim;
  std::int64_t& fires;
  std::int64_t limit;
  void operator()() const {
    if (++fires < limit) sim.Schedule(SimTime::Nanos(100), Tick{*this});
  }
};

TEST(AllocFree, SelfReschedulingTimerSteadyState) {
  Simulator sim;
  std::int64_t fires = 0;
  // Warmup: first fires grow the slot slab, heap buffer, and lane.
  sim.Schedule(SimTime::Nanos(100), Tick{sim, fires, 1000});
  sim.Run();
  ASSERT_EQ(fires, 1000);

  fires = 0;
  const AllocDelta d = CountAllocations([&] {
    sim.Schedule(SimTime::Nanos(100), Tick{sim, fires, 100000});
    sim.Run();
  });
  EXPECT_EQ(fires, 100000);
  EXPECT_EQ(d.news, 0u) << "timer steady state allocated";
  EXPECT_EQ(d.deletes, 0u);
}

// Two links forwarding into each other through a bouncing sink: the
// Link -> Queue -> event -> deliver -> Link cycle exercises the packet
// freelist and the zero-copy handoff.
struct Bouncer : PacketSink {
  Link* out = nullptr;
  std::uint64_t received = 0;
  std::uint64_t limit = 0;
  void HandlePacket(Packet&& p) override {
    ++received;
    if (received < limit) out->Enqueue(std::move(p));
  }
};

TEST(AllocFree, LinkPacketPingPongSteadyState) {
  Simulator sim;
  Bouncer east_sink, west_sink;
  Link::Config lc;
  lc.rate_bps = 100'000'000'000;
  lc.propagation = SimTime::Micros(1);
  Link east(sim, lc, &east_sink);
  Link west(sim, lc, &west_sink);
  east_sink.out = &west;  // arrived east -> bounce back west
  west_sink.out = &east;
  east_sink.limit = west_sink.limit = 1u << 30;

  Packet p;
  p.id = 1;
  p.size_bytes = 9000;
  p.payload = 8940;

  // Warmup bounces grow every pool involved.
  east.Enqueue(Packet(p));
  sim.RunUntil(SimTime::Millis(1));
  ASSERT_GT(east_sink.received + west_sink.received, 100u);

  const AllocDelta d = CountAllocations([&] {
    sim.RunFor(SimTime::Millis(10));
  });
  EXPECT_GT(east_sink.received + west_sink.received, 1000u);
  EXPECT_EQ(d.news, 0u) << "packet path steady state allocated";
  EXPECT_EQ(d.deletes, 0u);
  EXPECT_LE(sim.stashed_packets(), 1u);  // at most the one in flight
}

// Burst handoff variant: a convoy of zero-serialization packets bounces
// between two burst-enabled links, arriving via HandleBurst. The chained
// handoff (stack pointer array + Packet::burst_next) must stay off the heap.
struct BurstBouncer : PacketSink {
  Link* out = nullptr;
  std::uint64_t received = 0;
  std::uint64_t bursts = 0;
  void HandlePacket(Packet&& p) override {
    ++received;
    out->Enqueue(std::move(p));
  }
  void HandleBurst(Packet** pkts, std::size_t n) override {
    ++bursts;
    received += n;
    for (std::size_t i = 0; i < n; ++i) out->Enqueue(std::move(*pkts[i]));
  }
};

TEST(AllocFree, LinkBurstHandoffSteadyState) {
  Simulator sim;
  BurstBouncer east_sink, west_sink;
  Link::Config lc;
  lc.rate_bps = 1'000'000'000'000'000'000ull;  // zero-tx for any real MTU
  lc.propagation = SimTime::Micros(1);
  lc.allow_burst = true;
  lc.queue.capacity_packets = 10'000;
  Link east(sim, lc, &east_sink);
  Link west(sim, lc, &west_sink);
  east_sink.out = &west;
  west_sink.out = &east;

  // An 8-packet convoy: all serialize in 0 ps, so every hop delivers the
  // whole group in one HandleBurst.
  for (std::uint64_t i = 0; i < 8; ++i) {
    Packet p;
    p.id = i + 1;
    p.size_bytes = 9000;
    p.payload = 8940;
    east.Enqueue(std::move(p));
  }
  sim.RunUntil(SimTime::Millis(1));
  ASSERT_GT(east_sink.bursts + west_sink.bursts, 100u);  // burst path engaged

  const std::uint64_t bursts_before = east_sink.bursts + west_sink.bursts;
  const AllocDelta d = CountAllocations([&] {
    sim.RunFor(SimTime::Millis(10));
  });
  EXPECT_GT(east_sink.bursts + west_sink.bursts, bursts_before + 1000u);
  EXPECT_EQ(d.news, 0u) << "link burst steady state allocated";
  EXPECT_EQ(d.deletes, 0u);
}

// ACK coalescing: once the merge scratches are warm, a repeated SACK burst
// through TcpConnection::HandleBurst must not touch the heap — the merged
// ApplySack callback has to fit std::function's inline buffer and the
// per-burst block union reuses grown vectors.
TEST(AllocFree, AckCoalescingSteadyState) {
  Simulator sim;
  test::LoopbackHarness harness(sim);
  TcpConfig config;
  config.mss = 1000;
  TcpConnection conn(sim, &harness.host, 1, 99, config);
  conn.Connect();
  harness.Settle();
  Packet syn = harness.out.Pop();
  conn.HandlePacket(test::LoopbackHarness::SynAckFor(
      syn, config.tdtcp_enabled, config.num_tdns));
  harness.Settle();
  harness.out.packets.clear();
  conn.AddAppData(20'000);
  harness.Settle();
  harness.out.packets.clear();

  // A dup-ACK burst with SACK blocks; identical replays are idempotent on
  // the scoreboard, so steady state is reached after one warm pass.
  Packet acks[4];
  Packet* ptrs[4];
  auto reload = [&] {
    acks[0] = test::LoopbackHarness::Ack(1, 1, {{1001, 2001}});
    acks[1] = test::LoopbackHarness::Ack(1, 1, {{1001, 3001}});
    acks[2] = test::LoopbackHarness::Ack(1, 1, {{1001, 4001}});
    acks[3] = test::LoopbackHarness::Ack(1, 1, {{1001, 5001}});
    for (int i = 0; i < 4; ++i) ptrs[i] = &acks[i];
  };
  // Warmup: the first burst grows the merge/recount scratches AND mutates
  // the scoreboard (fast retransmit, recovery sends), which resizes the
  // loss-detection scratch; the second runs with every size stable.
  for (int round = 0; round < 2; ++round) {
    reload();
    conn.HandleBurst(ptrs, 4);
    harness.Settle();
    harness.out.packets.clear();
  }

  reload();
  const AllocDelta d = CountAllocations([&] { conn.HandleBurst(ptrs, 4); });
  EXPECT_EQ(d.news, 0u) << "ACK coalescing steady state allocated";
  EXPECT_EQ(d.deletes, 0u);
}

}  // namespace
}  // namespace tdtcp
