// The thread-parallel sweep engine (app/sweep) and its result emission
// (app/result_io): determinism across job counts, aggregation math, grid
// expansion, and the tdtcp-sweep/1 JSON round-trip.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "app/result_io.hpp"
#include "app/sweep.hpp"

namespace tdtcp {
namespace {

// A short paper-config run: two 1400us optical weeks, no sampling overhead.
ExperimentConfig TinyConfig(Variant v) {
  return PaperConfig(v)
      .WithFlows(2)
      .WithDuration(SimTime::Micros(2800))
      .WithWarmup(SimTime::Micros(1400))
      .WithSampling(false, false)
      .WithSampleInterval(SimTime::Micros(100))
      .WithPlotWeeks(1);
}

SweepSpec TinySpec(int jobs) {
  SweepSpec spec;
  spec.base = TinyConfig(Variant::kTdtcp);
  spec.variants = {Variant::kTdtcp, Variant::kCubic};
  spec.seeds = {1, 2, 3};
  spec.jobs = jobs;
  return spec;
}

// ---------------------------------------------------------------------------
// ParallelFor / ResolveJobs
// ---------------------------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  ParallelFor(4, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, RunsInlineWithOneJob) {
  int sum = 0;  // no atomics needed: jobs=1 must not spawn threads
  ParallelFor(1, 10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(ParallelFor(4, 64,
                           [](std::size_t i) {
                             if (i == 13) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(ResolveJobs, PositivePassesThroughZeroMeansHardware) {
  EXPECT_EQ(ResolveJobs(3), 3);
  EXPECT_GE(ResolveJobs(0), 1);
}

// ---------------------------------------------------------------------------
// Aggregation math, against hand-computed fixtures
// ---------------------------------------------------------------------------

TEST(ComputeStats, HandComputedFixture) {
  // {4, 8, 6, 2}: mean 5, sample variance (1+9+1+9)/3 = 20/3.
  const MetricStats s = ComputeStats({4, 8, 6, 2});
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(20.0 / 3.0), 1e-12);
  // 95% CI half-width with t_{0.975, df=3} = 3.182.
  EXPECT_NEAR(s.ci95, 3.182 * std::sqrt(20.0 / 3.0) / 2.0, 1e-9);
}

TEST(ComputeStats, SingleValueHasNoSpread) {
  const MetricStats s = ComputeStats({42.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

TEST(ComputeStats, LargeSampleUsesNormalCritical) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i % 2 ? 1.0 : -1.0);
  const MetricStats s = ComputeStats(v);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  const double stddev = std::sqrt(100.0 / 99.0);
  EXPECT_NEAR(s.stddev, stddev, 1e-12);
  EXPECT_NEAR(s.ci95, 1.96 * stddev / 10.0, 1e-9);  // df=99 -> z
}

TEST(AggregateRuns, AggregatesEveryScalarMetricAcrossSeeds) {
  SweepRun a, b;
  a.seed = 1;
  a.result.goodput_bps = 10e9;
  a.result.retransmissions = 100;
  b.seed = 2;
  b.result.goodput_bps = 20e9;
  b.result.retransmissions = 300;
  const auto metrics = AggregateRuns({a, b});
  ASSERT_EQ(metrics.size(), ScalarMetrics(a.result).size());
  EXPECT_EQ(metrics[0].first, "goodput_bps");
  EXPECT_DOUBLE_EQ(metrics[0].second.mean, 15e9);
  bool found_rtx = false;
  for (const auto& [name, st] : metrics) {
    if (name == "retransmissions") {
      found_rtx = true;
      EXPECT_DOUBLE_EQ(st.mean, 200.0);
      EXPECT_NEAR(st.stddev, std::sqrt(2.0) * 100.0, 1e-9);
      // t_{0.975, df=1} = 12.706.
      EXPECT_NEAR(st.ci95, 12.706 * std::sqrt(2.0) * 100.0 / std::sqrt(2.0),
                  1e-6);
    }
  }
  EXPECT_TRUE(found_rtx);
}

// ---------------------------------------------------------------------------
// Grid expansion
// ---------------------------------------------------------------------------

TEST(ExpandGrid, VariantMajorOrderAndSeedBlocks) {
  SweepSpec spec = TinySpec(1);
  spec.schedules.push_back({"relaxed", spec.base.schedule});
  const auto cases = ExpandGrid(spec);
  // 2 variants x 1 schedule x 1 duration x 3 seeds.
  ASSERT_EQ(cases.size(), 6u);
  EXPECT_EQ(cases[0].label, "tdtcp/relaxed");
  EXPECT_EQ(cases[3].label, "cubic/relaxed");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cases[static_cast<std::size_t>(i)].config.seed,
              static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(cases[static_cast<std::size_t>(i)].config.workload.variant,
              Variant::kTdtcp);
    EXPECT_EQ(cases[static_cast<std::size_t>(i + 3)].config.workload.variant,
              Variant::kCubic);
  }
}

TEST(ExpandGrid, EmptyAxesFallBackToBase) {
  SweepSpec spec;
  spec.base = TinyConfig(Variant::kDctcp);
  spec.base.seed = 7;
  const auto cases = ExpandGrid(spec);
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_EQ(cases[0].config.seed, 7u);
  EXPECT_EQ(cases[0].config.workload.variant, Variant::kDctcp);
  EXPECT_EQ(cases[0].config.duration, spec.base.duration);
}

// ---------------------------------------------------------------------------
// Determinism: jobs=1 and jobs=4 must be bit-identical per seed
// ---------------------------------------------------------------------------

void ExpectIdenticalResults(const ExperimentResult& a,
                            const ExperimentResult& b) {
  // goodput_bps is a double computed from event-exact byte counts: bitwise
  // equality is the contract, not approximate equality.
  EXPECT_EQ(a.goodput_bps, b.goodput_bps);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.reorder_events, b.reorder_events);
  EXPECT_EQ(a.duplicate_segments, b.duplicate_segments);
  EXPECT_EQ(a.cross_tdn_exemptions, b.cross_tdn_exemptions);
  ASSERT_EQ(a.seq_samples.size(), b.seq_samples.size());
  for (std::size_t i = 0; i < a.seq_samples.size(); ++i) {
    EXPECT_EQ(a.seq_samples[i].t, b.seq_samples[i].t);
    EXPECT_EQ(a.seq_samples[i].value, b.seq_samples[i].value);
  }
}

TEST(RunSweep, BitIdenticalAcrossJobCounts) {
  const SweepResult serial = RunSweep(TinySpec(1));
  const SweepResult parallel = RunSweep(TinySpec(4));
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  EXPECT_EQ(serial.jobs, 1);
  EXPECT_EQ(parallel.jobs, 4);
  for (std::size_t c = 0; c < serial.cells.size(); ++c) {
    const SweepCell& sc = serial.cells[c];
    const SweepCell& pc = parallel.cells[c];
    EXPECT_EQ(sc.label, pc.label);
    ASSERT_EQ(sc.runs.size(), 3u);
    ASSERT_EQ(pc.runs.size(), 3u);
    for (std::size_t r = 0; r < sc.runs.size(); ++r) {
      EXPECT_EQ(sc.runs[r].seed, pc.runs[r].seed);
      ExpectIdenticalResults(sc.runs[r].result, pc.runs[r].result);
    }
    // Aggregates derive from identical inputs in identical order.
    ASSERT_EQ(sc.metrics.size(), pc.metrics.size());
    for (std::size_t m = 0; m < sc.metrics.size(); ++m) {
      EXPECT_EQ(sc.metrics[m].first, pc.metrics[m].first);
      EXPECT_EQ(sc.metrics[m].second.mean, pc.metrics[m].second.mean);
      EXPECT_EQ(sc.metrics[m].second.ci95, pc.metrics[m].second.ci95);
    }
  }
}

TEST(RunCases, ResultsArriveInInputOrder) {
  std::vector<SweepCase> cases = {
      {"tdtcp", TinyConfig(Variant::kTdtcp)},
      {"cubic", TinyConfig(Variant::kCubic)},
      {"dctcp", TinyConfig(Variant::kDctcp)},
  };
  const auto results = RunCases(cases, 3);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].variant, Variant::kTdtcp);
  EXPECT_EQ(results[1].variant, Variant::kCubic);
  EXPECT_EQ(results[2].variant, Variant::kDctcp);
  for (const auto& r : results) EXPECT_GT(r.total_bytes, 0u);
}

// ---------------------------------------------------------------------------
// tdtcp-sweep/1 JSON round-trip
// ---------------------------------------------------------------------------

TEST(ResultIo, JsonRoundTripPreservesScalars) {
  SweepSpec spec = TinySpec(2);
  spec.seeds = {1, 2};
  const SweepResult sweep = RunSweep(spec);
  const std::string json = SweepToJson(sweep);
  EXPECT_NE(json.find(kSweepSchemaVersion), std::string::npos);

  const SweepResult back = SweepFromJson(json);
  EXPECT_EQ(back.jobs, sweep.jobs);
  ASSERT_EQ(back.cells.size(), sweep.cells.size());
  for (std::size_t c = 0; c < sweep.cells.size(); ++c) {
    const SweepCell& orig = sweep.cells[c];
    const SweepCell& rt = back.cells[c];
    EXPECT_EQ(rt.label, orig.label);
    EXPECT_EQ(rt.variant, orig.variant);
    EXPECT_EQ(rt.duration, orig.duration);
    ASSERT_EQ(rt.runs.size(), orig.runs.size());
    for (std::size_t r = 0; r < orig.runs.size(); ++r) {
      EXPECT_EQ(rt.runs[r].seed, orig.runs[r].seed);
      // %.17g round-trips doubles exactly.
      for (const auto& [name, value] : ScalarMetrics(orig.runs[r].result)) {
        bool matched = false;
        for (const auto& [rn, rv] : ScalarMetrics(rt.runs[r].result)) {
          if (rn == name) {
            matched = true;
            EXPECT_EQ(rv, value) << name;
          }
        }
        EXPECT_TRUE(matched) << name;
      }
    }
    ASSERT_EQ(rt.metrics.size(), orig.metrics.size());
    for (std::size_t m = 0; m < orig.metrics.size(); ++m) {
      EXPECT_EQ(rt.metrics[m].first, orig.metrics[m].first);
      EXPECT_EQ(rt.metrics[m].second.mean, orig.metrics[m].second.mean);
      EXPECT_EQ(rt.metrics[m].second.stddev, orig.metrics[m].second.stddev);
      EXPECT_EQ(rt.metrics[m].second.ci95, orig.metrics[m].second.ci95);
      EXPECT_EQ(rt.metrics[m].second.n, orig.metrics[m].second.n);
    }
  }
}

TEST(ResultIo, RejectsWrongSchema) {
  EXPECT_THROW(SweepFromJson("{\"schema\":\"tdtcp-sweep/999\",\"cells\":[]}"),
               std::runtime_error);
  EXPECT_THROW(SweepFromJson("not json at all"), std::runtime_error);
}

TEST(ResultIo, ParseJsonHandlesWriterSubset) {
  const JsonValue v = ParseJson(
      "{\"a\": [1, 2.5, -3e2], \"b\": \"x\\\"y\", \"c\": {\"d\": null}}");
  ASSERT_EQ(v.type, JsonValue::Type::kObject);
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
  EXPECT_EQ(v.Find("b")->string, "x\"y");
  EXPECT_EQ(v.Find("c")->Find("d")->type, JsonValue::Type::kNull);
}

TEST(ResultIo, MalformedInputIsRejectedNotUndefinedBehavior) {
  // Each of these used to be UB or an uncaught std::stod/stoi exception;
  // all must surface as a clear runtime_error.
  const char* bad[] = {
      "",                         // empty input
      "{",                        // truncated object
      "[1, 2",                    // truncated array
      "{\"a\": }",                // missing value
      "{\"a\" 1}",                // missing colon
      "\"unterminated",           // unterminated string
      "{\"a\": 1} trailing",      // trailing characters
      "1e",                       // malformed number (stod would throw)
      "-",                        // sign with no digits
      "1.2.3",                    // number with junk suffix
      "1e999999",                 // overflow
      "\"\\uzzzz\"",              // non-hex \u escape
      "\"\\u12",                  // truncated \u escape
      "\"\\q\"",                  // unsupported escape
      "nul",                      // truncated literal
  };
  for (const char* text : bad) {
    EXPECT_THROW(ParseJson(text), std::runtime_error) << "input: " << text;
  }
}

TEST(ResultIo, DeeplyNestedInputFailsInsteadOfOverflowingStack) {
  // "[[[[..." would recurse once per byte without a depth limit.
  const std::string bomb(100'000, '[');
  EXPECT_THROW(ParseJson(bomb), std::runtime_error);
  const std::string obj_bomb = [] {
    std::string s;
    for (int i = 0; i < 10'000; ++i) s += "{\"a\":";
    return s;
  }();
  EXPECT_THROW(ParseJson(obj_bomb), std::runtime_error);
}

TEST(ResultIo, TruncatedSweepJsonAlwaysThrowsCleanly) {
  // Fuzz-ish: every prefix of a real sweep document must either parse (only
  // the full document can) or throw runtime_error — never crash or return
  // garbage silently.
  SweepSpec spec = TinySpec(1);
  spec.variants = {Variant::kTdtcp};
  spec.seeds = {1};
  const std::string json = SweepToJson(RunSweep(spec));
  // Step through prefixes coarsely (every 7th byte) to keep runtime small,
  // plus the last 32 one-byte steps where the structure closes.
  std::vector<std::size_t> cuts;
  for (std::size_t n = 0; n < json.size(); n += 7) cuts.push_back(n);
  for (std::size_t n = json.size() > 32 ? json.size() - 32 : 0;
       n < json.size(); ++n) {
    cuts.push_back(n);
  }
  for (std::size_t n : cuts) {
    EXPECT_THROW(SweepFromJson(json.substr(0, n)), std::runtime_error)
        << "prefix length " << n;
  }
  // Corrupted interior bytes: flip structural characters to junk. Any
  // outcome is fine except UB: either it still parses (benign mutation) or
  // it throws a clear exception (parse error, unknown variant name, ...).
  for (std::size_t i = 0; i < json.size(); i += 11) {
    std::string mutated = json;
    mutated[i] = '?';
    try {
      SweepFromJson(mutated);
    } catch (const std::exception&) {
      // expected for structural corruption
    }
  }
  // The intact document still parses.
  EXPECT_NO_THROW(SweepFromJson(json));
}

TEST(ResultIo, FileRoundTripAndCsv) {
  SweepSpec spec = TinySpec(2);
  spec.variants = {Variant::kTdtcp};
  spec.seeds = {1, 2};
  const SweepResult sweep = RunSweep(spec);
  const std::string json_path = ::testing::TempDir() + "/sweep_test.json";
  const std::string csv_path = ::testing::TempDir() + "/sweep_test.csv";
  WriteSweepJson(json_path, sweep);
  WriteSweepCsv(csv_path, sweep);
  const SweepResult back = ReadSweepJson(json_path);
  ASSERT_EQ(back.cells.size(), 1u);
  EXPECT_EQ(back.cells[0].runs.size(), 2u);
  // CSV has a header plus at least per-seed and aggregate rows.
  FILE* f = std::fopen(csv_path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[4096];
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  EXPECT_EQ(std::string(line).rfind("label,variant,schedule,qdisc,duration_ms,seed",
                                    0), 0u);
  int rows = 0;
  while (std::fgets(line, sizeof line, f)) ++rows;
  std::fclose(f);
  EXPECT_GE(rows, 2 + 3);  // 2 seeds + mean/stddev/ci95
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

}  // namespace
}  // namespace tdtcp
