// TDTCP core behavior: per-TDN state isolation and switching (§3.1), the
// four state-management classes (§4.3), relaxed reordering detection with
// the appendix-A.1 cross-TDN scenarios (§3.4), per-TDN RTT sample matching
// and the synthesized RTO (§4.4), and runtime TDN growth (§4.2).
#include <gtest/gtest.h>

#include "cc/registry.hpp"
#include "cc/reno.hpp"
#include "tcp/tcp_connection.hpp"
#include "tdtcp/reordering.hpp"
#include "tdtcp/tdn_manager.hpp"
#include "test_util.hpp"

namespace tdtcp {
namespace {

using test::LoopbackHarness;

TcpConfig TdtcpConfig() {
  TcpConfig c;
  c.mss = 1000;
  c.cc_factory = MakeCcFactory("reno");
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  return c;
}

struct TdtcpFixture {
  explicit TdtcpFixture(TcpConfig config = TdtcpConfig())
      : harness(sim), conn(sim, &harness.host, 1, 99, config) {
    conn.Connect();
    harness.Settle();
    Packet syn = harness.out.Pop();
    conn.HandlePacket(LoopbackHarness::SynAckFor(syn, true, config.num_tdns));
    harness.Settle();
    harness.out.packets.clear();
  }

  std::vector<Packet> TakeData() {
    std::vector<Packet> out;
    while (!harness.out.Empty()) {
      Packet p = harness.out.Pop();
      if (p.payload > 0) out.push_back(std::move(p));
    }
    return out;
  }

  Simulator sim;
  LoopbackHarness harness;
  TcpConnection conn;
};

// ---------------------------------------------------------------------------
// TdnManager
// ---------------------------------------------------------------------------

TEST(TdnManager, StartsWithRequestedStates) {
  TdnManager mgr(3, [] { return MakeReno(); }, RttEstimator::Config{}, 10);
  EXPECT_EQ(mgr.num_tdns(), 3u);
  EXPECT_EQ(mgr.active_id(), 0);
  for (TdnId i = 0; i < 3; ++i) {
    EXPECT_EQ(mgr.state(i).id, i);
    EXPECT_EQ(mgr.state(i).cwnd, 10u);
    ASSERT_NE(mgr.state(i).cc, nullptr);
  }
}

TEST(TdnManager, SwitchPreservesSnapshots) {
  TdnManager mgr(2, [] { return MakeReno(); }, RttEstimator::Config{}, 10);
  mgr.state(0).cwnd = 5;
  mgr.state(1).cwnd = 77;
  EXPECT_TRUE(mgr.SwitchTo(1));
  EXPECT_EQ(mgr.active().cwnd, 77u);
  mgr.active().cwnd = 80;
  mgr.SwitchTo(0);
  EXPECT_EQ(mgr.active().cwnd, 5u);  // untouched while inactive
  mgr.SwitchTo(1);
  EXPECT_EQ(mgr.active().cwnd, 80u);  // resumed from checkpoint
}

TEST(TdnManager, SwitchToSameIsNoOp) {
  TdnManager mgr(2, [] { return MakeReno(); }, RttEstimator::Config{}, 10);
  EXPECT_FALSE(mgr.SwitchTo(0));
}

TEST(TdnManager, RuntimeGrowthAllocatesFreshState) {
  TdnManager mgr(2, [] { return MakeReno(); }, RttEstimator::Config{}, 10);
  mgr.SwitchTo(4);  // §4.2: new TDN seen for the first time
  EXPECT_EQ(mgr.num_tdns(), 5u);
  EXPECT_EQ(mgr.active_id(), 4);
  EXPECT_EQ(mgr.active().cwnd, 10u);
}

TEST(TdnManager, AllTdnsAggregation) {
  TdnManager mgr(3, [] { return MakeReno(); }, RttEstimator::Config{}, 10);
  mgr.state(0).packets_out = 3;
  mgr.state(1).packets_out = 4;
  mgr.state(2).packets_out = 5;
  mgr.state(1).sacked_out = 2;
  EXPECT_EQ(mgr.TotalPacketsOut(), 12u);
  EXPECT_EQ(mgr.TotalPipe(), 10u);
}

TEST(TdnManager, AnyTdnRetransmitRule) {
  TdnManager mgr(2, [] { return MakeReno(); }, RttEstimator::Config{}, 10);
  EXPECT_FALSE(mgr.AnyRetransmitPending());
  // lost_out alone is not enough: the state machine must be recovering.
  mgr.state(1).lost_out = 1;
  EXPECT_FALSE(mgr.AnyRetransmitPending());
  mgr.state(1).ca_state = CaState::kRecovery;
  EXPECT_TRUE(mgr.AnyRetransmitPending());
  mgr.state(1).ca_state = CaState::kLoss;
  EXPECT_TRUE(mgr.AnyRetransmitPending());
}

// ---------------------------------------------------------------------------
// Relaxed reordering decision function
// ---------------------------------------------------------------------------

TEST(RelaxedReordering, MatchingTdnIsNotSuspect) {
  TxSegment seg;
  seg.tdn = 1;
  TdnChangePointer ptr;
  ptr.Advance(1000, 1);
  EXPECT_FALSE(SuspectCrossTdnReordering(seg, /*trigger=*/1, ptr));
}

TEST(RelaxedReordering, MismatchedTdnIsSuspect) {
  TxSegment seg;
  seg.tdn = 0;
  TdnChangePointer ptr;
  ptr.Advance(1000, 1);
  EXPECT_TRUE(SuspectCrossTdnReordering(seg, /*trigger=*/1, ptr));
}

// ---------------------------------------------------------------------------
// Per-TDN engine behavior
// ---------------------------------------------------------------------------

TEST(Tdtcp, SegmentsTaggedWithActiveTdn) {
  TdtcpFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  for (auto& p : f.TakeData()) EXPECT_EQ(p.data_tdn, 0);
  // Ack everything, switch TDN, send more: new tags.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, f.conn.snd_nxt(), {}, 0));
  f.harness.Settle();
  f.TakeData();
  f.conn.OnTdnChange(1, false);
  f.harness.Settle();
  auto data = f.TakeData();
  ASSERT_FALSE(data.empty());
  for (auto& p : data) EXPECT_EQ(p.data_tdn, 1);
  EXPECT_EQ(f.conn.stats().tdn_switches, 1u);
}

TEST(Tdtcp, PipeAccountedPerTdn) {
  TdtcpFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  EXPECT_EQ(f.conn.tdns().state(0).packets_in_flight(), 10u);
  f.conn.OnTdnChange(1, false);
  f.harness.Settle();
  // TDN 1 opens its own window on top of TDN 0's outstanding data.
  EXPECT_EQ(f.conn.tdns().state(0).packets_in_flight(), 10u);
  EXPECT_EQ(f.conn.tdns().state(1).packets_in_flight(), 10u);
  EXPECT_EQ(f.conn.tdns().TotalPipe(), 20u);
}

TEST(Tdtcp, AckOnNewTdnCreditsOriginTdn) {
  // §3.1's example: a packet sent on TDN 0 whose ACK returns on TDN 1 must
  // decrement TDN 0's in-flight count even though TDN 1 is active.
  TdtcpFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  f.conn.OnTdnChange(1, false);
  f.harness.Settle();
  f.TakeData();
  ASSERT_EQ(f.conn.tdns().state(0).packets_out, 10u);
  // ACK the first two TDN-0 segments, arriving tagged TDN 1.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 2001, {}, /*ack_tdn=*/1));
  EXPECT_EQ(f.conn.tdns().state(0).packets_out, 8u);
}

TEST(Tdtcp, TdnChangePointerAdvancesAtFirstSendOnNewTdn) {
  TdtcpFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, f.conn.snd_nxt(), {}, 0));
  f.harness.Settle();
  f.TakeData();
  const auto boundary = f.conn.snd_nxt();
  f.conn.OnTdnChange(1, false);
  f.harness.Settle();
  auto data = f.TakeData();
  ASSERT_FALSE(data.empty());
  EXPECT_EQ(data.front().seq, boundary);
}

TEST(Tdtcp, RelaxedDetectionExemptsCrossTdnHoles) {
  // Appendix A.1 scenario (a): the tail of a high-latency (TDN 0) sending
  // episode is overtaken by low-latency (TDN 1) segments. SACKs for the
  // TDN 1 segments must NOT mark the TDN 0 segments lost.
  TdtcpFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();  // 10 TDN-0 segments outstanding (seq 1..10000)
  f.conn.OnTdnChange(1, false);
  f.harness.Settle();
  f.TakeData();  // 10 TDN-1 segments outstanding (seq 10001..20000)
  // ACKs for the TDN 1 segments arrive first (SACK above the TDN-0 hole).
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{10001, 14001}}, 1));
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{10001, 18001}}, 1));
  EXPECT_GT(f.conn.stats().cross_tdn_exemptions, 0u);
  EXPECT_EQ(f.conn.stats().retransmissions, 0u);
  EXPECT_EQ(f.conn.tdns().state(0).lost_out, 0u);
  // TDN 0 remains Open (Fig. 4): it is allowed to keep sending full speed.
  EXPECT_NE(f.conn.tdns().state(0).ca_state, CaState::kRecovery);
  // The delayed TDN-0 ACK then arrives: everything resolves, no loss.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 10001, {{10001, 18001}}, 0));
  EXPECT_EQ(f.conn.stats().retransmissions, 0u);
}

TEST(Tdtcp, SameTdnHolesStillMarkedLost) {
  // A hole whose segments share the ACK's TDN is a genuine loss candidate;
  // the relaxed heuristic only exempts mismatched TDNs (Fig. 4's pink
  // segment enters Recovery).
  TdtcpFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 5001}}, 0));
  EXPECT_GT(f.conn.tdns().state(0).lost_out +
                f.conn.send_queue().CountRetrans(), 0u);
  EXPECT_EQ(f.conn.tdns().state(0).ca_state, CaState::kRecovery);
}

TEST(Tdtcp, RelaxedDetectionDisabledByAblation) {
  TcpConfig c = TdtcpConfig();
  c.relaxed_reordering = false;
  TdtcpFixture f(c);
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  f.conn.OnTdnChange(1, false);
  f.harness.Settle();
  f.TakeData();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{10001, 14001}}, 1));
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{10001, 18001}}, 1));
  f.harness.Settle();
  // Without the heuristic the cross-TDN hole is declared lost immediately.
  EXPECT_EQ(f.conn.stats().cross_tdn_exemptions, 0u);
  EXPECT_GT(f.conn.stats().retransmissions, 0u);
}

TEST(Tdtcp, CrossTdnTrueTailLossEventuallyRecovered) {
  // §3.4: "for cases where lost segments with a different TDN ID are true
  // tail losses, TDTCP relies on RACK-TLP to recover".
  TdtcpFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();  // TDN-0 segments 1..10000 — and they really are lost
  f.conn.OnTdnChange(1, false);
  f.harness.Settle();
  f.TakeData();
  // Establish RTT so patience windows are meaningful.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{10001, 18001}}, 1));
  const auto before = f.sim.now();
  f.sim.RunUntil(before + SimTime::Millis(12));
  // The TDN-0 data was genuinely lost; some recovery (timeout- or
  // patience-driven) must have retransmitted it.
  EXPECT_GT(f.conn.stats().retransmissions, 0u);
}

TEST(Tdtcp, PerTdnRttSampleMatching) {
  // §4.4: type-1/2 samples (data and ACK on the same TDN) feed that TDN's
  // estimator; type-3 mixed samples are dropped.
  TdtcpFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  // ACK two segments on TDN 0 after 100us: valid type-1 samples.
  f.sim.RunUntil(SimTime::Micros(100) + f.sim.now());
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 2001, {}, 0));
  EXPECT_TRUE(f.conn.tdns().state(0).rtt.has_sample());
  const auto samples_before = f.conn.tdns().state(0).rtt.samples();
  // Next ACK returns on TDN 1: type-3, discarded.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 4001, {}, 1));
  EXPECT_EQ(f.conn.tdns().state(0).rtt.samples(), samples_before);
  EXPECT_FALSE(f.conn.tdns().state(1).rtt.has_sample());
  EXPECT_GT(f.conn.stats().rtt_samples_dropped, 0u);
}

TEST(Tdtcp, RttMatchingDisabledByAblation) {
  TcpConfig c = TdtcpConfig();
  c.per_tdn_rtt = false;
  TdtcpFixture f(c);
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  f.sim.RunUntil(SimTime::Micros(100) + f.sim.now());
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 2001, {}, 1));  // mixed
  // Ablated: the sample is taken anyway (credited to the data's TDN).
  EXPECT_TRUE(f.conn.tdns().state(0).rtt.has_sample());
  EXPECT_EQ(f.conn.stats().rtt_samples_dropped, 0u);
}

TEST(Tdtcp, ImminentNoticeDoesNotSwitchState) {
  TdtcpFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.conn.OnTdnChange(1, /*imminent=*/true);
  EXPECT_EQ(f.conn.tdns().active_id(), 0);
  EXPECT_EQ(f.conn.stats().tdn_switches, 0u);
}

TEST(Tdtcp, NotificationForUnknownTdnGrowsStateSet) {
  TdtcpFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.conn.OnTdnChange(5, false);
  EXPECT_EQ(f.conn.tdns().num_tdns(), 6u);
  EXPECT_EQ(f.conn.tdns().active_id(), 5);
}

TEST(Tdtcp, NonTdtcpConnectionIgnoresNotifications) {
  TcpConfig c = TdtcpConfig();
  c.tdtcp_enabled = false;
  c.num_tdns = 1;
  Simulator sim;
  LoopbackHarness h(sim);
  TcpConnection conn(sim, &h.host, 1, 99, c);
  conn.Connect();
  h.Settle();
  Packet syn = h.out.Pop();
  conn.HandlePacket(LoopbackHarness::SynAckFor(syn, false, 0));
  conn.OnTdnChange(1, false);
  EXPECT_EQ(conn.tdns().active_id(), 0);
  EXPECT_EQ(conn.tdns().num_tdns(), 1u);
}

TEST(Tdtcp, SynthesizedRtoSurvivesCrossTdnAckDelay) {
  // A segment sent on the fast TDN right before a switch has its ACK
  // delayed by the slow TDN. The synthesized RTO must not fire spuriously.
  TcpConfig c = TdtcpConfig();
  c.rtt.min_rto = SimTime::Micros(50);  // make the RTO floor irrelevant
  TdtcpFixture f(c);
  // Train both estimators: TDN 0 slow (200us), TDN 1 fast (40us).
  for (int i = 0; i < 60; ++i) {
    f.conn.tdns().state(0).rtt.AddSample(SimTime::Micros(200));
    f.conn.tdns().state(1).rtt.AddSample(SimTime::Micros(40));
  }
  f.conn.OnTdnChange(1, false);
  f.conn.AddAppData(5000);  // only TDN-1 segments in flight
  f.harness.Settle();
  f.TakeData();
  const auto timeouts_before = f.conn.stats().timeouts;
  // 110us passes: more than TDN 1's own RTO (~40-90us) but less than the
  // synthesized ½*40 + ½*200 = 120us + variance guard.
  f.sim.RunUntil(f.sim.now() + SimTime::Micros(110));
  EXPECT_EQ(f.conn.stats().timeouts, timeouts_before);
}

TEST(Tdtcp, AblatedSynthesizedRtoFiresEarly) {
  TcpConfig c = TdtcpConfig();
  c.rtt.min_rto = SimTime::Micros(50);
  c.synthesized_rto = false;
  c.tlp_enabled = false;
  TdtcpFixture f(c);
  for (int i = 0; i < 60; ++i) {
    f.conn.tdns().state(0).rtt.AddSample(SimTime::Micros(200));
    f.conn.tdns().state(1).rtt.AddSample(SimTime::Micros(40));
  }
  f.conn.OnTdnChange(1, false);
  f.conn.AddAppData(5000);
  f.harness.Settle();
  f.TakeData();
  const auto timeouts_before = f.conn.stats().timeouts;
  f.sim.RunUntil(f.sim.now() + SimTime::Micros(110));
  // Without synthesis the fast TDN's own RTO fires before the delayed ACK
  // could possibly arrive.
  EXPECT_GT(f.conn.stats().timeouts, timeouts_before);
}

}  // namespace
}  // namespace tdtcp
