// Property-style parameterized sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// invariants that must hold across seeds, loss patterns, schedules, and
// engine configurations.
#include <gtest/gtest.h>

#include <tuple>

#include "app/experiment.hpp"
#include "cc/registry.hpp"
#include "rdcn/schedule.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"
#include "test_util.hpp"

namespace tdtcp {
namespace {

using test::PairHarness;

// ---------------------------------------------------------------------------
// Reliability: every byte delivered exactly once, in order, under any
// combination of queue pressure and link jitter.
// ---------------------------------------------------------------------------

struct LossParams {
  std::uint32_t queue_capacity;
  int jitter_us;
  std::uint64_t seed;
};

class ReliabilitySweep : public ::testing::TestWithParam<LossParams> {};

TEST_P(ReliabilitySweep, AllBytesDeliveredInOrderExactlyOnce) {
  const LossParams p = GetParam();
  Simulator sim;
  Random rng(p.seed);

  PairHarness::Options opt;
  opt.queue_capacity = p.queue_capacity;
  PairHarness net(sim);
  // Rebuild links with jitter + tight queues.
  Link::Config ab;
  ab.rate_bps = 10'000'000'000;
  ab.propagation = SimTime::Micros(10);
  ab.queue.capacity_packets = p.queue_capacity;
  ab.reorder_jitter = SimTime::Micros(p.jitter_us);
  net.ab_link = std::make_unique<Link>(sim, ab, &net.b, &rng);
  net.ba_link = std::make_unique<Link>(sim, ab, &net.a, &rng);
  net.a.AttachUplink(net.ab_link.get());
  net.b.AttachUplink(net.ba_link.get());

  TcpConfig c;
  c.mss = 1000;
  c.cc_factory = MakeCcFactory("reno");
  TcpConnection server(sim, &net.b, 1, 0, c);
  TcpConnection client(sim, &net.a, 1, 1, c);

  std::uint64_t delivered = 0;
  std::uint64_t next_expected = 1;
  bool in_order = true;
  server.SetDeliverCallback([&](const TcpConnection::DeliverInfo& d) {
    delivered += d.len;
    in_order &= (d.stream_seq == next_expected);
    next_expected = d.stream_seq + d.len;
  });

  server.Listen();
  client.Connect();
  constexpr std::uint64_t kBytes = 150'000;
  client.AddAppData(kBytes);
  sim.RunUntil(SimTime::Millis(400));

  EXPECT_EQ(delivered, kBytes) << "queue=" << p.queue_capacity
                               << " jitter=" << p.jitter_us;
  EXPECT_TRUE(in_order);
  EXPECT_EQ(client.bytes_acked(), kBytes);
}

INSTANTIATE_TEST_SUITE_P(
    LossAndJitterGrid, ReliabilitySweep,
    ::testing::Values(
        LossParams{2, 0, 1}, LossParams{2, 50, 2}, LossParams{4, 0, 3},
        LossParams{4, 30, 4}, LossParams{8, 100, 5}, LossParams{16, 0, 6},
        LossParams{3, 20, 7}, LossParams{5, 80, 8}, LossParams{2, 10, 9},
        LossParams{6, 60, 10}));

// ---------------------------------------------------------------------------
// Schedule invariants across parameter grids.
// ---------------------------------------------------------------------------

class ScheduleSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ScheduleSweep, SlotsPartitionTimeExactly) {
  const auto [day_us, night_us, num_days] = GetParam();
  ScheduleConfig sc;
  sc.day_length = SimTime::Micros(day_us);
  sc.night_length = SimTime::Micros(night_us);
  sc.num_days = static_cast<std::uint32_t>(num_days);
  sc.circuit_day = static_cast<std::uint32_t>(num_days - 1);
  Schedule s(sc);

  EXPECT_EQ(s.week_length().micros(),
            static_cast<std::int64_t>(num_days) * (day_us + night_us));

  // Walk two weeks in odd steps: slots must tile time with no gaps, the
  // circuit TDN must appear only inside the circuit day, and OptimalBits
  // must be monotone.
  double prev_bits = -1;
  SimTime prev_end = SimTime::Zero();
  for (SimTime t = SimTime::Zero(); t < s.week_length() * 2;
       t += SimTime::Micros(7)) {
    const auto slot = s.SlotAt(t);
    EXPECT_GE(t, slot.start);
    EXPECT_LT(t, slot.end);
    if (slot.start > prev_end) ADD_FAILURE() << "gap in schedule";
    prev_end = slot.end > prev_end ? slot.end : prev_end;
    if (s.TdnAt(t) == 1) {
      EXPECT_TRUE(slot.circuit);
      EXPECT_FALSE(slot.night);
    }
    const double bits = s.OptimalBits(t, 10e9, 100e9);
    // Tolerate float ulps between the full-week product and the
    // partial-week walk at week boundaries.
    EXPECT_GE(bits, prev_bits - std::max(1.0, prev_bits * 1e-9));
    prev_bits = bits;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ScheduleGrid, ScheduleSweep,
    ::testing::Combine(::testing::Values(90, 180, 400),
                       ::testing::Values(10, 20, 50),
                       ::testing::Values(2, 3, 7)));

// ---------------------------------------------------------------------------
// Per-TDN accounting invariants across TDN counts and switch patterns.
// ---------------------------------------------------------------------------

class TdnCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(TdnCountSweep, AccountingStaysConsistentAcrossSwitches) {
  const int num_tdns = GetParam();
  Simulator sim;
  test::LoopbackHarness h(sim);
  TcpConfig c;
  c.mss = 1000;
  c.cc_factory = MakeCcFactory("cubic");
  c.tdtcp_enabled = true;
  c.num_tdns = static_cast<std::uint8_t>(num_tdns);
  TcpConnection conn(sim, &h.host, 1, 99, c);
  conn.Connect();
  h.Settle();
  Packet syn = h.out.Pop();
  conn.HandlePacket(test::LoopbackHarness::SynAckFor(
      syn, true, static_cast<std::uint8_t>(num_tdns)));
  conn.SetUnlimitedData(true);
  h.Settle();

  Random rng(static_cast<std::uint64_t>(num_tdns));
  std::uint64_t acked = 1;
  for (int round = 0; round < 200; ++round) {
    // Random TDN switch.
    conn.OnTdnChange(static_cast<TdnId>(rng.UniformInt(0, num_tdns - 1)),
                     false);
    h.Settle();
    h.out.packets.clear();
    // ACK a random amount of outstanding data on a random TDN.
    const std::uint64_t outstanding = conn.snd_nxt() - acked;
    if (outstanding > 0) {
      acked += 1000 * rng.UniformInt(0, static_cast<std::int64_t>(
                                            outstanding / 1000));
      conn.HandlePacket(test::LoopbackHarness::Ack(
          1, acked, {}, static_cast<TdnId>(rng.UniformInt(0, num_tdns - 1))));
      h.Settle();
      h.out.packets.clear();
    }

    // Invariants: per-TDN sums match the retransmission queue exactly.
    std::uint32_t packets = 0, sacked = 0, lost = 0, retrans = 0;
    for (int t = 0; t < num_tdns; ++t) {
      const TdnState& st = conn.tdns().state(static_cast<TdnId>(t));
      packets += st.packets_out;
      sacked += st.sacked_out;
      lost += st.lost_out;
      retrans += st.retrans_out;
      EXPECT_GE(st.cwnd, 1u);
    }
    EXPECT_EQ(packets, conn.send_queue().size());
    EXPECT_EQ(sacked, conn.send_queue().CountSacked());
    EXPECT_EQ(lost, conn.send_queue().CountLost());
    EXPECT_EQ(retrans, conn.send_queue().CountRetrans());
    // Flag exclusivity: a segment is never both SACKed and lost, and the
    // aggregate pipe can never underflow.
    for (const auto& seg : conn.send_queue().segments()) {
      EXPECT_FALSE(seg.sacked && seg.lost);
    }
    EXPECT_LE(sacked + lost, packets + retrans);
    EXPECT_LT(conn.tdns().TotalPipe(), 1u << 30);
  }
}

INSTANTIATE_TEST_SUITE_P(TdnCounts, TdnCountSweep, ::testing::Values(1, 2, 3, 4, 8));

// ---------------------------------------------------------------------------
// End-to-end RDCN invariants across seeds and variants.
// ---------------------------------------------------------------------------

class VariantSweep
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {};

TEST_P(VariantSweep, ProgressWithinPhysicalBounds) {
  const auto [name, seed] = GetParam();
  ExperimentConfig cfg = PaperConfig(VariantFromName(name));
  cfg.duration = SimTime::Millis(12);
  cfg.warmup = SimTime::Millis(2);
  cfg.workload.num_flows = 4;
  cfg.seed = seed;
  ExperimentResult r = RunExperiment(cfg);

  const Schedule schedule(cfg.schedule);
  const double optimal =
      schedule.OptimalBits(schedule.week_length(), 10e9, 100e9) /
      schedule.week_length().seconds();
  EXPECT_GT(r.goodput_bps, 0.0) << name;
  EXPECT_LE(r.goodput_bps, optimal * 1.05) << name;
  // VOQ bounded by its configured capacity (50 for retcpdyn).
  const double cap =
      std::string(name) == "retcpdyn" ? 50.0 : 16.0;
  for (const auto& s : r.voq_samples) EXPECT_LE(s.value, cap) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VariantSweep,
    ::testing::Combine(::testing::Values("tdtcp", "cubic", "dctcp", "reno",
                                         "retcp", "retcpdyn", "mptcp"),
                       ::testing::Values(1u, 42u)));

// ---------------------------------------------------------------------------
// CC module properties.
// ---------------------------------------------------------------------------

class CcSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(CcSweep, WindowNeverBelowFloorAcrossEvents) {
  auto cc = MakeCcFactory(GetParam())();
  TdnState s;
  s.cwnd = 10;
  s.ssthresh = 0x7fffffff;
  s.cwnd_limited = true;
  cc->Init(s);
  Random rng(7);
  SimTime now = SimTime::Zero();
  for (int i = 0; i < 2000; ++i) {
    now += SimTime::Micros(rng.UniformInt(10, 200));
    switch (rng.UniformInt(0, 3)) {
      case 0:
        cc->CongAvoid(s, static_cast<std::uint32_t>(rng.UniformInt(1, 4)), now);
        break;
      case 1:
        s.ssthresh = std::max(2u, cc->SsThresh(s));
        s.cwnd = s.ssthresh;
        break;
      case 2:
        cc->OnRetransmitTimeout(s);
        s.cwnd = 1;  // engine sets cwnd on RTO
        break;
      case 3: {
        AckContext ctx;
        ctx.event.newly_acked_packets = 1;
        ctx.event.newly_acked_bytes = 8940;
        ctx.event.rtt_sample = SimTime::Micros(rng.UniformInt(20, 300));
        ctx.event.ece = rng.Bernoulli(0.2);
        ctx.now = now;
        ctx.snd_una = static_cast<std::uint64_t>(i) * 1000 + 1;
        ctx.snd_nxt = ctx.snd_una + 50'000;
        cc->OnAck(s, ctx);
        cc->CongAvoid(s, 1, now);
        break;
      }
    }
    EXPECT_GE(s.cwnd, 1u) << GetParam();
    EXPECT_LT(s.cwnd, 1'000'000u) << GetParam();  // no runaway
  }
}

INSTANTIATE_TEST_SUITE_P(AllCcs, CcSweep,
                         ::testing::Values("reno", "cubic", "dctcp", "retcp",
                                           "retcpdyn"));

// ---------------------------------------------------------------------------
// MSS sweep: segmentation and delivery integrity for any segment size.
// ---------------------------------------------------------------------------

class MssSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MssSweep, TransferIntactAtAnyMss) {
  const std::uint32_t mss = GetParam();
  Simulator sim;
  PairHarness::Options opt;
  opt.queue_capacity = 6;  // some loss
  PairHarness net(sim, opt);
  TcpConfig c;
  c.mss = mss;
  c.cc_factory = MakeCcFactory("cubic");
  TcpConnection server(sim, &net.b, 1, 0, c);
  TcpConnection client(sim, &net.a, 1, 1, c);
  server.Listen();
  client.Connect();
  const std::uint64_t bytes = 50 * mss + mss / 3 + 1;  // non-aligned tail
  client.AddAppData(bytes);
  sim.RunUntil(SimTime::Millis(100));
  EXPECT_EQ(client.bytes_acked(), bytes) << "mss=" << mss;
  EXPECT_EQ(server.stats().bytes_received, bytes) << "mss=" << mss;
}

INSTANTIATE_TEST_SUITE_P(MssGrid, MssSweep,
                         ::testing::Values(536u, 1000u, 1448u, 8940u, 8999u));

// ---------------------------------------------------------------------------
// Full-RDCN schedule sweep: TDTCP invariants across day/night geometries.
// ---------------------------------------------------------------------------

class RdcnScheduleSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RdcnScheduleSweep, TdtcpRemainsSaneAndBeatsNothingWeird) {
  const auto [day_us, num_days] = GetParam();
  ExperimentConfig cfg = PaperConfig(Variant::kTdtcp);
  cfg.schedule.day_length = SimTime::Micros(day_us);
  cfg.schedule.night_length = SimTime::Micros(std::max(2, day_us / 9));
  cfg.schedule.num_days = static_cast<std::uint32_t>(num_days);
  cfg.schedule.circuit_day = static_cast<std::uint32_t>(num_days - 1);
  cfg.WithDuration(SimTime::Millis(15))
      .WithWarmup(SimTime::Millis(3))
      .WithFlows(4)
      .WithSampling(false, false)
      .WithPlotWeeks(1);
  ExperimentResult r = RunExperiment(cfg);

  const Schedule schedule(cfg.schedule);
  const double optimal =
      schedule.OptimalBits(schedule.week_length(), 10e9, 100e9) /
      schedule.week_length().seconds();
  EXPECT_GT(r.goodput_bps, 0.3 * optimal)
      << "day=" << day_us << " days=" << num_days;
  EXPECT_LE(r.goodput_bps, optimal * 1.02);
}

INSTANTIATE_TEST_SUITE_P(ScheduleGeometries, RdcnScheduleSweep,
                         ::testing::Combine(::testing::Values(90, 180, 500),
                                            ::testing::Values(2, 4, 7)));

// ---------------------------------------------------------------------------
// CUBIC closed form: K = cbrt(W_max * (1-beta) / C) — after a loss at
// W_max, the window returns to the origin point at t ~= K.
// ---------------------------------------------------------------------------

TEST(CubicClosedForm, ReturnsToOriginNearK) {
  // Use a window large enough that the cubic curve (K ~ W^(1/3)) dominates
  // the Reno-friendliness floor (time ~ W) — the regime CUBIC was built for.
  auto cc = MakeCcFactory("cubic")();
  TdnState s;
  s.cwnd = 6'000;
  s.ssthresh = 0x7fffffff;
  s.cwnd_limited = true;
  cc->Init(s);
  // Loss at W_max = 6000 (first SsThresh records last_max).
  s.ssthresh = std::max(2u, cc->SsThresh(s));
  s.cwnd = s.ssthresh;  // ~4200 (beta = 0.7)
  const double wmax = 6'000.0, beta = 717.0 / 1024.0, C = 0.4;
  const double k = std::cbrt(wmax * (1.0 - beta) / C);  // ~16.4 s

  // Drive per-ACK events (two segments per ACK, like a delayed-ACK
  // receiver) at a 10ms RTT; find when cwnd crosses W_max again.
  SimTime t = SimTime::Millis(10);
  double crossed_at_s = -1;
  for (int rtt = 0; rtt < 2500 && crossed_at_s < 0; ++rtt) {
    AckContext ctx;
    ctx.event.newly_acked_packets = 2;
    ctx.event.newly_acked_bytes = 2 * 8940;
    ctx.event.rtt_sample = SimTime::Millis(10);
    ctx.now = t;
    cc->OnAck(s, ctx);
    const std::uint32_t events = s.cwnd / 2;
    for (std::uint32_t e = 0; e < events; ++e) cc->CongAvoid(s, 2, t);
    if (s.cwnd >= wmax) crossed_at_s = t.seconds();
    t += SimTime::Millis(10);
  }
  ASSERT_GT(crossed_at_s, 0.0);
  EXPECT_NEAR(crossed_at_s, k, k * 0.35);
}

}  // namespace
}  // namespace tdtcp
