// Edge cases across the stack: segmentation boundaries, buffer limits,
// runtime TDN growth from the wire, downgrade under duress, ECN/recovery
// interleavings, and long-horizon arithmetic.
#include <gtest/gtest.h>

#include "cc/registry.hpp"
#include "net/fabric_port.hpp"
#include "rdcn/schedule.hpp"
#include "tcp/tcp_connection.hpp"
#include "test_util.hpp"

namespace tdtcp {
namespace {

using test::CaptureSink;
using test::LoopbackHarness;

TcpConfig BaseConfig() {
  TcpConfig c;
  c.mss = 1000;
  c.cc_factory = MakeCcFactory("reno");
  return c;
}

struct Fixture {
  explicit Fixture(TcpConfig config = BaseConfig(), bool td = false)
      : harness(sim), conn(sim, &harness.host, 1, 99, config) {
    conn.Connect();
    harness.Settle();
    Packet syn = harness.out.Pop();
    conn.HandlePacket(LoopbackHarness::SynAckFor(syn, td, config.num_tdns));
    harness.Settle();
    harness.out.packets.clear();
  }
  std::vector<Packet> TakeData() {
    std::vector<Packet> out;
    while (!harness.out.Empty()) {
      Packet p = harness.out.Pop();
      if (p.payload > 0) out.push_back(std::move(p));
    }
    return out;
  }
  Simulator sim;
  LoopbackHarness harness;
  TcpConnection conn;
};

TEST(Segmentation, NoSegmentExceedsMss) {
  Fixture f;
  f.conn.AddAppData(12'345);
  f.harness.Settle();
  std::uint64_t total = 0;
  for (auto& p : f.TakeData()) {
    EXPECT_LE(p.payload, 1000u);
    total += p.payload;
  }
  EXPECT_EQ(total, 10'000u);  // initial cwnd of 10 segments
}

TEST(Segmentation, MappedChunksNeverSpan) {
  // MPTCP DSS mappings must stay per-segment: a segment never crosses a
  // chunk boundary even when chunks are smaller than the MSS.
  Fixture f;
  f.conn.AddMappedData(700, 10'000);
  f.conn.AddMappedData(700, 50'000);
  f.harness.Settle();
  auto data = f.TakeData();
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data[0].payload, 700u);
  EXPECT_EQ(data[0].dss_seq, 10'000u);
  EXPECT_EQ(data[1].payload, 700u);
  EXPECT_EQ(data[1].dss_seq, 50'000u);
}

TEST(Segmentation, SndBufLimitsOutstanding) {
  TcpConfig c = BaseConfig();
  c.snd_buf_bytes = 3'000;
  c.initial_cwnd = 100;
  Fixture f(c);
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  EXPECT_EQ(f.TakeData().size(), 3u);  // buffer, not cwnd, binds
}

TEST(RuntimeTdn, UnknownAckTdnGrowsStateSet) {
  TcpConfig c = BaseConfig();
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  Fixture f(c, /*td=*/true);
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  ASSERT_EQ(f.conn.tdns().num_tdns(), 2u);
  // An ACK tagged with a TDN the sender has never seen (runtime schedule
  // change, §4.2) must allocate state instead of crashing.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 2001, {}, /*ack_tdn=*/5));
  EXPECT_EQ(f.conn.tdns().num_tdns(), 6u);
  EXPECT_EQ(f.conn.snd_una(), 2001u);
}

TEST(Downgrade, DuringRecoveryStaysConsistent) {
  TcpConfig c = BaseConfig();
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  Fixture f(c, /*td=*/true);
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 5001}}, 0));
  ASSERT_EQ(f.conn.tdns().state(0).ca_state, CaState::kRecovery);
  f.conn.DowngradeToRegularTcp();
  // Notifications are now ignored; recovery still completes.
  f.conn.OnTdnChange(1, false);
  EXPECT_EQ(f.conn.tdns().active_id(), 0);
  f.conn.HandlePacket(LoopbackHarness::Ack(1, f.conn.snd_nxt()));
  EXPECT_EQ(f.conn.tdns().state(0).ca_state, CaState::kOpen);
}

TEST(Ecn, EceDuringRecoveryDoesNotDoubleReduce) {
  TcpConfig c = BaseConfig();
  c.ecn_enabled = true;
  Fixture f(c);
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 5001}}));
  ASSERT_EQ(f.conn.tdns().active().ca_state, CaState::kRecovery);
  const auto ssthresh = f.conn.tdns().active().ssthresh;
  Packet e = LoopbackHarness::Ack(1, 2001, {{2001, 5001}});
  e.ece = true;
  f.conn.HandlePacket(std::move(e));
  // Still in the same episode; ssthresh untouched by the ECE.
  EXPECT_EQ(f.conn.tdns().active().ssthresh, ssthresh);
  EXPECT_EQ(f.conn.tdns().active().ca_state, CaState::kRecovery);
}

TEST(FlowControl, MidStreamWindowShrinkRespected) {
  Fixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  Packet a = LoopbackHarness::Ack(1, 5001);
  a.rcv_window = 2000;  // only two more segments allowed outstanding
  f.conn.HandlePacket(std::move(a));
  f.harness.Settle();
  // Outstanding was 5000 (> 2000): nothing new may be sent...
  EXPECT_TRUE(f.TakeData().empty());
  // ...until enough is acknowledged.
  Packet b = LoopbackHarness::Ack(1, 10'001);
  b.rcv_window = 2000;
  f.conn.HandlePacket(std::move(b));
  f.harness.Settle();
  EXPECT_EQ(f.TakeData().size(), 2u);
}

TEST(Receiver, ManyAlternatingHolesSackedCorrectly) {
  Fixture rxf;  // reuse fixture's connection as a receiver via Listen path
  Simulator sim;
  LoopbackHarness h(sim);
  TcpConfig c = BaseConfig();
  TcpConnection rx(sim, &h.host, 2, 99, c);
  rx.Listen();
  Packet syn;
  syn.type = PacketType::kData;
  syn.flow = 2;
  syn.syn = true;
  syn.size_bytes = 60;
  rx.HandlePacket(std::move(syn));
  h.Settle();
  h.out.packets.clear();
  rx.HandlePacket(LoopbackHarness::Ack(2, 1));

  // Deliver segments 2,4,6,8 (odd ones missing), spaced in time so SACK
  // recency ordering is well-defined.
  for (int i : {1, 3, 5, 7}) {
    Packet d;
    d.type = PacketType::kData;
    d.flow = 2;
    d.seq = 1 + static_cast<std::uint64_t>(i) * 1000;
    d.payload = 1000;
    d.size_bytes = 1060;
    rx.HandlePacket(std::move(d));
    sim.RunFor(SimTime::Micros(1));
  }
  h.Settle();
  ASSERT_FALSE(h.out.Empty());
  Packet last_ack = h.out.packets.back();
  EXPECT_EQ(last_ack.ack, 1u);            // nothing in order yet
  EXPECT_EQ(last_ack.num_sack, 4u);       // four disjoint blocks
  // Most recent hole-filling first: segment 8's block.
  EXPECT_EQ(last_ack.sack[0].start, 7001u);
  EXPECT_EQ(rx.rcv_nxt(), 1u);
  // Now fill the head: everything up to 2000 delivered, holes shrink.
  Packet d0;
  d0.type = PacketType::kData;
  d0.flow = 2;
  d0.seq = 1;
  d0.payload = 1000;
  d0.size_bytes = 1060;
  rx.HandlePacket(std::move(d0));
  EXPECT_EQ(rx.rcv_nxt(), 2001u);  // segment 1 plus buffered segment 2
}

TEST(FabricPort, ModeChangeMidSerializationCompletesAtOldRate) {
  Simulator sim;
  CaptureSink sink;
  FabricPort::Config fc;
  fc.voq.capacity_packets = 16;
  fc.initial_mode = NetworkMode{0, 10'000'000'000, SimTime::Zero(), false};
  FabricPort port(sim, fc, &sink);
  Packet p;
  p.id = sim.NextPacketId();
  p.type = PacketType::kData;
  p.size_bytes = 9000;  // 7.2us at 10G
  port.Enqueue(std::move(p));
  sim.RunUntil(SimTime::Micros(1));
  port.SetMode(NetworkMode{1, 100'000'000'000, SimTime::Zero(), true});
  sim.Run();
  // The in-flight packet finishes at the old 10G rate (7.2us), not 0.72us.
  EXPECT_EQ(sim.now(), SimTime::Nanos(7200));
  // It still gets the *old-mode* circuit mark? No: marks are stamped at
  // dequeue, which happened before the switch.
  EXPECT_FALSE(sink.packets.front().circuit_mark);
}

TEST(Schedule, FarFutureNoOverflow) {
  Schedule s((ScheduleConfig()));
  const SimTime t = SimTime::Seconds(3600);  // one simulated hour
  const auto slot = s.SlotAt(t);
  EXPECT_LT(slot.day_index, 7u);
  EXPECT_GT(s.OptimalBits(t, 10e9, 100e9), 0.0);
  EXPECT_EQ((slot.end - slot.start).micros() == 180 ||
                (slot.end - slot.start).micros() == 20,
            true);
}

TEST(Tlp, DoesNotFireWithNothingOutstanding) {
  Fixture f;
  f.conn.AddAppData(2000);
  f.harness.Settle();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 2001));
  f.sim.RunUntil(f.sim.now() + SimTime::Millis(5));
  EXPECT_EQ(f.conn.stats().tlp_probes, 0u);
  EXPECT_EQ(f.conn.stats().timeouts, 0u);
}

TEST(Stats, BytesAckedMatchesSndUna) {
  Fixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 7001));
  EXPECT_EQ(f.conn.bytes_acked(), 7000u);
  EXPECT_EQ(f.conn.snd_una(), 7001u);
}

}  // namespace
}  // namespace tdtcp
