// Batched-execution equivalence (DESIGN.md §11).
//
// Three layers, three contracts:
//  - sim core: RunBatch dispatches in exactly the order the sequential
//    RunNext loop would, including randomized same-timestamp collisions,
//    mid-batch immediate-lane arrivals, and cancellations;
//  - experiment level: a seeded churn + fault + trace run is bit-identical
//    (trace_hash / churn_hash / totals) with batched dispatch forced on and
//    forced off;
//  - TCP: a coalesced ACK burst (TcpConnection::HandleBurst) leaves the
//    scoreboard and per-TDN counters equal to the sequential per-packet
//    reference, with the invariant checker recount running on both paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "app/experiment.hpp"
#include "cc/registry.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"
#include "test_util.hpp"

namespace tdtcp {
namespace {

using test::LoopbackHarness;

// ---------------------------------------------------------------------------
// Sim core: randomized firing-order soak
// ---------------------------------------------------------------------------

struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void Mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

// A deterministic generator independent of the mode under test.
struct Lcg {
  std::uint64_t s;
  explicit Lcg(std::uint64_t seed) : s(seed) {}
  std::uint64_t Next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 17;
  }
};

// Schedules `rounds` wavefronts of events with heavy timestamp collisions;
// handlers re-schedule (same tick via the immediate lane, and into the
// future), and every third event schedules a victim it then cancels.
// Returns a digest of (now, marker) in firing order.
std::uint64_t RunRandomSoak(std::uint64_t seed, bool batched) {
  Simulator sim;
  sim.set_batched_dispatch(batched);
  Lcg rng(seed);
  Fnv hash;
  std::uint64_t spawned = 0;

  // fanout spawned from inside a handler; bounded so the soak terminates.
  constexpr std::uint64_t kMaxSpawn = 20000;
  std::function<void(std::uint64_t)> fire = [&](std::uint64_t marker) {
    hash.Mix(static_cast<std::uint64_t>(sim.now().picos()));
    hash.Mix(marker);
    if (spawned >= kMaxSpawn) return;
    const std::uint64_t r = rng.Next();
    if (r % 4 == 0) {
      // Same-tick follow-up through the zero-delay lane.
      ++spawned;
      const std::uint64_t m = marker * 31 + 1;
      sim.Schedule(SimTime::Zero(), [&fire, m] { fire(m); });
    }
    if (r % 3 == 0) {
      // Future event, colliding with other handlers' picks (mod 7 ticks).
      ++spawned;
      const std::uint64_t m = marker * 31 + 2;
      sim.Schedule(SimTime::Nanos(1 + (r >> 8) % 7), [&fire, m] { fire(m); });
    }
    if (r % 5 == 0) {
      // Schedule-then-cancel: the dead entry must be invisible in both modes.
      EventId victim = sim.Schedule(SimTime::Nanos(1 + (r >> 16) % 5),
                                    [&hash] { hash.Mix(0xdeadu); });
      sim.Cancel(victim);
    }
  };

  for (int i = 0; i < 200; ++i) {
    const std::uint64_t r = rng.Next();
    const std::uint64_t m = 1000000 + i;
    sim.ScheduleAt(SimTime::Nanos(r % 23), [&fire, m] { fire(m); });
  }
  sim.Run();
  hash.Mix(sim.events_executed());
  return hash.h;
}

TEST(BatchSoak, RandomizedFiringOrderMatchesSequential) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234567ull}) {
    const std::uint64_t batched = RunRandomSoak(seed, true);
    const std::uint64_t sequential = RunRandomSoak(seed, false);
    EXPECT_EQ(batched, sequential) << "seed " << seed;
    EXPECT_NE(batched, 0u);
  }
}

// ---------------------------------------------------------------------------
// Experiment level: seeded churn + fault run, batching on vs off
// ---------------------------------------------------------------------------

ExperimentConfig SoakConfig() {
  ExperimentConfig cfg = PaperConfig(Variant::kTdtcp);
  cfg.duration = SimTime::Millis(10);
  cfg.warmup = SimTime::Millis(2);
  cfg.workload.num_flows = 4;
  cfg.sample_voq = false;
  cfg.sample_reorder = false;
  FaultPlan plan;
  plan.fabric.loss_rate = 0.02;
  plan.control.notify_loss_rate = 0.1;
  plan.control.notify_delay_mean = SimTime::Micros(5);
  plan.control.notify_duplicate_rate = 0.05;
  return cfg.WithFault(plan).WithChurn(30).WithTrace();
}

TEST(BatchSoak, ChurnFaultExperimentBitIdentical) {
  const ExperimentResult batched =
      RunExperiment(SoakConfig().WithBatchedDispatch(true));
  const ExperimentResult sequential =
      RunExperiment(SoakConfig().WithBatchedDispatch(false));
  EXPECT_GT(batched.trace_records, 0u);
  EXPECT_GT(batched.churn.opened, 0u);
  EXPECT_EQ(batched.trace_hash, sequential.trace_hash);
  EXPECT_EQ(batched.churn_hash, sequential.churn_hash);
  EXPECT_EQ(batched.fault_trace_hash, sequential.fault_trace_hash);
  EXPECT_EQ(batched.total_bytes, sequential.total_bytes);
  EXPECT_EQ(batched.retransmissions, sequential.retransmissions);
  EXPECT_DOUBLE_EQ(batched.goodput_bps, sequential.goodput_bps);
  // Identical event streams, whichever loop dispatched them.
  EXPECT_EQ(batched.sim_events, sequential.sim_events);
}

TEST(BatchSoak, SimStatsSurfaceBatchingCounters) {
  const ExperimentResult batched =
      RunExperiment(SoakConfig().WithBatchedDispatch(true));
  const ExperimentResult sequential =
      RunExperiment(SoakConfig().WithBatchedDispatch(false));
  EXPECT_GT(batched.sim_events, 0u);
  EXPECT_GT(batched.sim_batches, 0u);
  EXPECT_GE(batched.sim_max_batch, 1u);
  // Same-tick fan-out exists in any RDCN run: some batch holds > 1 event.
  EXPECT_GT(batched.sim_max_batch, 1u);
  EXPECT_EQ(sequential.sim_batches, 0u);
  EXPECT_EQ(sequential.sim_max_batch, 0u);
}

// ---------------------------------------------------------------------------
// TCP: coalesced ACK burst == sequential per-packet reference
// ---------------------------------------------------------------------------

TcpConfig AckConfig() {
  TcpConfig c;
  c.mss = 1000;
  c.cc_factory = MakeCcFactory("reno");
  return c;
}

// A sender with `segments` data packets on the wire, built on the loopback
// harness so crafted ACKs can be injected with exact contents.
struct Sender {
  explicit Sender(TcpConfig config = AckConfig())
      : harness(sim), conn(sim, &harness.host, 1, 99, config) {
    conn.Connect();
    harness.Settle();
    Packet syn = harness.out.Pop();
    conn.HandlePacket(LoopbackHarness::SynAckFor(
        syn, conn.config().tdtcp_enabled, conn.config().num_tdns));
    harness.Settle();
    harness.out.packets.clear();
  }

  void SendData(std::uint64_t bytes) {
    conn.AddAppData(bytes);
    harness.Settle();
    harness.out.packets.clear();
  }

  Simulator sim;
  LoopbackHarness harness;
  TcpConnection conn;
};

struct TdnCounters {
  std::uint32_t packets_out, sacked_out, lost_out, retrans_out;
};

// Scoreboard-visible state the burst contract promises to preserve exactly.
struct AckOutcome {
  std::uint64_t snd_una;
  std::vector<TdnCounters> tdns;
  std::uint32_t q_sacked, q_lost, q_retrans;
  std::uint64_t acks_received, dsacks;

  static AckOutcome Of(const TcpConnection& c) {
    AckOutcome o;
    o.snd_una = c.snd_una();
    for (std::size_t i = 0; i < c.tdns().num_tdns(); ++i) {
      const TdnState& st = c.tdns().state(static_cast<TdnId>(i));
      o.tdns.push_back(
          {st.packets_out, st.sacked_out, st.lost_out, st.retrans_out});
    }
    const SendQueue& q = c.send_queue();
    o.q_sacked = q.CountSacked();
    o.q_lost = q.CountLost();
    o.q_retrans = q.CountRetrans();
    o.acks_received = c.stats().acks_received;
    o.dsacks = c.stats().dsacks_received;
    return o;
  }
};

void ExpectEqualOutcome(const AckOutcome& a, const AckOutcome& b) {
  EXPECT_EQ(a.snd_una, b.snd_una);
  ASSERT_EQ(a.tdns.size(), b.tdns.size());
  for (std::size_t i = 0; i < a.tdns.size(); ++i) {
    EXPECT_EQ(a.tdns[i].packets_out, b.tdns[i].packets_out) << "tdn " << i;
    EXPECT_EQ(a.tdns[i].sacked_out, b.tdns[i].sacked_out) << "tdn " << i;
    EXPECT_EQ(a.tdns[i].lost_out, b.tdns[i].lost_out) << "tdn " << i;
    EXPECT_EQ(a.tdns[i].retrans_out, b.tdns[i].retrans_out) << "tdn " << i;
  }
  EXPECT_EQ(a.q_sacked, b.q_sacked);
  EXPECT_EQ(a.q_lost, b.q_lost);
  EXPECT_EQ(a.q_retrans, b.q_retrans);
  EXPECT_EQ(a.acks_received, b.acks_received);
  EXPECT_EQ(a.dsacks, b.dsacks);
}

// Feeds `acks` to one connection as a coalesced burst and to an identically
// prepared twin packet-by-packet, then compares the scoreboard outcome. The
// invariant checker (on by default) recounts both paths from the scoreboard
// at every kAck, so an internally inconsistent merged pass throws before the
// comparison even runs.
void CheckBurstEquivalence(std::vector<Packet> acks,
                           std::uint64_t bytes = 10'000) {
  Sender batched, sequential;
  batched.SendData(bytes);
  sequential.SendData(bytes);

  std::vector<Packet> copy = acks;
  std::vector<Packet*> ptrs;
  for (Packet& p : acks) ptrs.push_back(&p);
  batched.conn.HandleBurst(ptrs.data(), ptrs.size());
  for (Packet& p : copy) sequential.conn.HandlePacket(std::move(p));

  ExpectEqualOutcome(AckOutcome::Of(batched.conn),
                     AckOutcome::Of(sequential.conn));
}

TEST(AckBurst, CumulativeTrainMatchesSequential) {
  // An incast-style train of rising cumulative ACKs.
  std::vector<Packet> acks;
  for (std::uint64_t a : {1001u, 2001u, 3001u, 5001u}) {
    acks.push_back(LoopbackHarness::Ack(1, a));
  }
  CheckBurstEquivalence(std::move(acks));
}

TEST(AckBurst, SackDupTrainMatchesSequential) {
  // Hole at the head: a train of duplicate ACKs each advancing the SACK
  // edge, the classic fast-retransmit trigger burst.
  std::vector<Packet> acks;
  acks.push_back(LoopbackHarness::Ack(1, 1, {{1001, 2001}}));
  acks.push_back(LoopbackHarness::Ack(1, 1, {{1001, 3001}}));
  acks.push_back(LoopbackHarness::Ack(1, 1, {{1001, 4001}}));
  acks.push_back(LoopbackHarness::Ack(1, 1, {{1001, 5001}}));
  CheckBurstEquivalence(std::move(acks));
}

TEST(AckBurst, MixedCumSackAndStaleMatchesSequential) {
  std::vector<Packet> acks;
  acks.push_back(LoopbackHarness::Ack(1, 2001));
  acks.push_back(LoopbackHarness::Ack(1, 2001, {{3001, 4001}}));
  acks.push_back(LoopbackHarness::Ack(1, 1001));            // stale straggler
  acks.push_back(LoopbackHarness::Ack(1, 2001, {{3001, 6001}}));
  acks.push_back(LoopbackHarness::Ack(1, 7001));
  CheckBurstEquivalence(std::move(acks));
}

TEST(AckBurst, DsackInBurstCountedOncePerAck) {
  // First ACK advances; second reports a duplicate below the new cumulative
  // ACK (a D-SACK) plus fresh SACK info.
  std::vector<Packet> acks;
  acks.push_back(LoopbackHarness::Ack(1, 3001));
  acks.push_back(LoopbackHarness::Ack(1, 3001, {{1001, 2001}, {4001, 5001}}));
  CheckBurstEquivalence(std::move(acks));
}

TEST(AckBurst, NonCoalescableFallsBackPerPacket) {
  // A FIN-bearing data packet inside the run must break coalescing and take
  // the sequential path; the burst entry point still delivers everything.
  Sender s;
  s.SendData(5'000);
  std::vector<Packet> pkts;
  pkts.push_back(LoopbackHarness::Ack(1, 1001));
  Packet rstless_data;  // a bare data packet (payload 0) — ignored, per spec
  rstless_data.type = PacketType::kData;
  rstless_data.flow = 1;
  rstless_data.size_bytes = 60;
  pkts.push_back(rstless_data);
  pkts.push_back(LoopbackHarness::Ack(1, 2001));
  std::vector<Packet*> ptrs;
  for (Packet& p : pkts) ptrs.push_back(&p);
  s.conn.HandleBurst(ptrs.data(), ptrs.size());
  EXPECT_EQ(s.conn.snd_una(), 2001u);
  EXPECT_EQ(s.conn.stats().acks_received, 2u);
}

}  // namespace
}  // namespace tdtcp
