// Full-system integration: complete RDCN experiments asserting the paper's
// qualitative results on shortened runs, delivery integrity across the
// fabric, determinism, and notification-path effects.
#include <gtest/gtest.h>

#include "app/experiment.hpp"
#include "cc/registry.hpp"
#include "rdcn/controller.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace tdtcp {
namespace {

ExperimentConfig ShortConfig(Variant v, int ms = 30) {
  ExperimentConfig cfg = PaperConfig(v);
  cfg.duration = SimTime::Millis(ms);
  cfg.warmup = SimTime::Millis(ms / 6);
  cfg.workload.num_flows = 8;
  return cfg;
}

TEST(Integration, TdtcpBeatsPacketOnlyAndTrailsOptimal) {
  ExperimentResult r = RunExperiment(ShortConfig(Variant::kTdtcp));
  const ExperimentConfig cfg = ShortConfig(Variant::kTdtcp);
  const Schedule schedule(cfg.schedule);
  const double optimal =
      schedule.OptimalBits(schedule.week_length(), 10e9, 100e9) /
      schedule.week_length().seconds();
  EXPECT_GT(r.goodput_bps, 10e9);       // better than packet-only
  EXPECT_LT(r.goodput_bps, optimal);    // below the analytic bound
  EXPECT_GT(r.goodput_bps, 0.7 * optimal);
}

TEST(Integration, TdtcpOutperformsCubic) {
  const double tdtcp = RunExperiment(ShortConfig(Variant::kTdtcp)).goodput_bps;
  const double cubic = RunExperiment(ShortConfig(Variant::kCubic)).goodput_bps;
  EXPECT_GT(tdtcp, cubic);
}

TEST(Integration, TdtcpMatchesRetcpDyn) {
  const double tdtcp = RunExperiment(ShortConfig(Variant::kTdtcp)).goodput_bps;
  const double dyn = RunExperiment(ShortConfig(Variant::kRetcpDyn)).goodput_bps;
  // §5.2: competitive — within 15% either way.
  EXPECT_GT(tdtcp, dyn * 0.85);
  EXPECT_LT(tdtcp, dyn * 1.15);
}

TEST(Integration, SingleTdnScheduleBehavesLikePlainNetwork) {
  // With the circuit never materializing, TDTCP degenerates gracefully.
  ExperimentConfig cfg = ShortConfig(Variant::kTdtcp, 20);
  cfg.schedule.circuit_day = ScheduleConfig::kNoCircuitDay;
  ExperimentResult r = RunExperiment(cfg);
  EXPECT_GT(r.goodput_bps, 7e9);
  EXPECT_LT(r.goodput_bps, 10.5e9);
}

TEST(Integration, DeterministicAcrossRuns) {
  ExperimentConfig cfg = ShortConfig(Variant::kTdtcp, 10);
  ExperimentResult a = RunExperiment(cfg);
  ExperimentResult b = RunExperiment(cfg);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.reorder_events, b.reorder_events);
  ASSERT_EQ(a.seq_samples.size(), b.seq_samples.size());
  for (std::size_t i = 0; i < a.seq_samples.size(); i += 97) {
    EXPECT_EQ(a.seq_samples[i].value, b.seq_samples[i].value);
  }
}

TEST(Integration, VoqNeverExceedsConfiguredCapacity) {
  ExperimentResult r = RunExperiment(ShortConfig(Variant::kCubic, 15));
  for (const auto& s : r.voq_samples) {
    EXPECT_LE(s.value, 16.0);
  }
}

TEST(Integration, RetcpDynVoqMayExceedSixteen) {
  ExperimentResult r = RunExperiment(ShortConfig(Variant::kRetcpDyn, 15));
  double max_voq = 0;
  for (const auto& s : r.voq_samples) max_voq = std::max(max_voq, s.value);
  EXPECT_GT(max_voq, 16.0);  // the enlarged VOQ actually gets used
  EXPECT_LE(max_voq, 50.0);
}

TEST(Integration, TdtcpLowestVoqOccupancy) {
  // Fig. 7b: TDTCP's VOQ utilization is the lowest of the variants.
  auto mean_voq = [](const ExperimentResult& r) {
    double sum = 0;
    std::size_t n = 0;
    for (const auto& s : r.voq_samples) {
      sum += s.value;
      ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  };
  const double tdtcp = mean_voq(RunExperiment(ShortConfig(Variant::kTdtcp)));
  const double cubic = mean_voq(RunExperiment(ShortConfig(Variant::kCubic)));
  EXPECT_LT(tdtcp, cubic);
}

TEST(Integration, TdtcpCutsReorderingRetransmitTail) {
  // Fig. 10: TDTCP produces far fewer spurious retransmissions (receiver
  // duplicates are ground truth: a retransmission of data that was never
  // lost arrives as a duplicate) than CUBIC.
  ExperimentResult td = RunExperiment(ShortConfig(Variant::kTdtcp));
  ExperimentResult cu = RunExperiment(ShortConfig(Variant::kCubic));
  EXPECT_LT(td.duplicate_segments, cu.duplicate_segments);
  EXPECT_GT(td.cross_tdn_exemptions, 0u);
  EXPECT_LE(Percentile(td.spurious_rtx_per_day, 90),
            Percentile(cu.spurious_rtx_per_day, 90));
}

TEST(Integration, NotificationOptimizationsImproveThroughput) {
  // Fig. 11: cached ICMP + pull model + control network beats
  // fresh-construction + push + data-plane delivery. A heavier generation
  // cost makes the direction decisive at this run length (the aggregate
  // effect is mild at the defaults; see EXPERIMENTS.md).
  ExperimentConfig optimized = ShortConfig(Variant::kTdtcp, 40);
  ExperimentConfig unoptimized = ShortConfig(Variant::kTdtcp, 40);
  optimized.workload.num_flows = 16;  // a full rack: the per-host generation
  unoptimized.workload.num_flows = 16;  // loop penalizes the tail hosts
  unoptimized.topology.notify.cached_packet = false;
  unoptimized.topology.notify.gen_delay_fresh_median = SimTime::Micros(15);
  unoptimized.topology.notify.via_control_network = false;
  unoptimized.topology.notify_dist.pull_model = false;
  const double opt = RunExperiment(optimized).goodput_bps;
  const double unopt = RunExperiment(unoptimized).goodput_bps;
  EXPECT_GT(opt, unopt);
}

TEST(Integration, RelaxedReorderingAblationHurts) {
  ExperimentConfig on = ShortConfig(Variant::kTdtcp, 40);
  ExperimentConfig off = ShortConfig(Variant::kTdtcp, 40);
  off.workload.base.relaxed_reordering = false;
  ExperimentResult r_on = RunExperiment(on);
  ExperimentResult r_off = RunExperiment(off);
  // Without §3.4 the sender declares cross-TDN holes lost: more spurious
  // recoveries roll back via DSACK undo, and throughput drops.
  EXPECT_GT(r_off.undo_events, r_on.undo_events);
  EXPECT_GT(r_on.goodput_bps, r_off.goodput_bps);
  EXPECT_EQ(r_off.cross_tdn_exemptions, 0u);
}

TEST(Integration, AllVariantsDeliverContiguousStreams) {
  for (Variant v : {Variant::kTdtcp, Variant::kCubic, Variant::kMptcp}) {
    ExperimentConfig cfg = ShortConfig(v, 10);
    cfg.workload.num_flows = 2;
    Simulator sim;
    Random rng(cfg.seed);
    Topology topo(sim, rng, cfg.topology);
    RdcnController::Config rc;
    rc.schedule = cfg.schedule;
    rc.packet_mode = cfg.topology.packet_mode;
    rc.circuit_mode = cfg.topology.circuit_mode;
    RdcnController controller(sim, rc, {topo.port(0, 1), topo.port(1, 0)},
                              {topo.tor(0), topo.tor(1)});
    Workload workload(sim, topo, cfg.workload);
    controller.Start();
    workload.Start();
    sim.RunUntil(cfg.duration);
    for (auto& f : workload.flows()) {
      if (f.tcp_receiver) {
        // In-order receiver progress equals delivered bytes + the SYN byte.
        EXPECT_EQ(f.tcp_receiver->rcv_nxt(),
                  f.tcp_receiver->stats().bytes_received + 1)
            << VariantName(v);
        EXPECT_GE(f.tcp_receiver->stats().bytes_received,
                  f.tcp_sender->bytes_acked())
            << VariantName(v);
      } else {
        EXPECT_GE(f.mptcp_receiver->meta_bytes_delivered(),
                  f.mptcp_sender->meta_bytes_acked())
            << VariantName(v);
      }
    }
  }
}

TEST(Integration, SimulatorScalesToHundredGbps) {
  // §1's engineering claim, translated to the simulator: a 100 Gbps flow on
  // a microsecond-reconfiguring fabric simulates correctly (throughput close
  // to line rate when both TDNs are 100G).
  ExperimentConfig cfg = ShortConfig(Variant::kTdtcp, 10);
  cfg.topology.packet_mode.rate_bps = 100'000'000'000;
  cfg.topology.packet_mode.propagation = SimTime::Micros(10);
  cfg.topology.circuit_mode.propagation = SimTime::Micros(5);
  cfg.topology.voq.capacity_packets = 64;
  ExperimentResult r = RunExperiment(cfg);
  EXPECT_GT(r.goodput_bps, 60e9);
}

}  // namespace
}  // namespace tdtcp
