// MPTCP: tdm_schd steering, DSS reassembly and dedup, pinned-path stalls,
// connection-level reinjection, shared meta receive window.
#include <gtest/gtest.h>

#include "app/experiment.hpp"
#include "mptcp/mptcp_connection.hpp"
#include "net/topology.hpp"
#include "rdcn/controller.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace tdtcp {
namespace {

// Full two-rack RDCN with one MPTCP flow.
struct MptcpFixture {
  MptcpFixture() : rng(1), topo(sim, rng, TopoCfg()) {
    RdcnController::Config rc;
    rc.packet_mode = topo.config().packet_mode;
    rc.circuit_mode = topo.config().circuit_mode;
    controller = std::make_unique<RdcnController>(
        sim, rc,
        std::vector<FabricPort*>{topo.port(0, 1), topo.port(1, 0)},
        std::vector<ToRSwitch*>{topo.tor(0), topo.tor(1)});

    MptcpConnection::Config mc;
    mc.subflow.mss = 8940;
    receiver = std::make_unique<MptcpConnection>(sim, topo.host(1, 0), 1,
                                                 topo.host_id(0, 0), mc);
    sender = std::make_unique<MptcpConnection>(sim, topo.host(0, 0), 1,
                                               topo.host_id(1, 0), mc);
    receiver->Listen();
    controller->Start();
    sender->Connect();
    sender->SetUnlimitedData(true);
  }

  static TopologyConfig TopoCfg() {
    TopologyConfig tc;
    tc.hosts_per_rack = 2;
    return tc;
  }

  Simulator sim;
  Random rng;
  Topology topo;
  std::unique_ptr<RdcnController> controller;
  std::unique_ptr<MptcpConnection> sender;
  std::unique_ptr<MptcpConnection> receiver;
};

TEST(Mptcp, SubflowZeroEstablishesImmediately) {
  MptcpFixture f;
  f.sim.RunUntil(SimTime::Millis(1));
  EXPECT_EQ(f.sender->subflow(0)->state(), TcpConnection::State::kEstablished);
  // Subflow 1's SYN is pinned to the circuit: it waits for the first
  // optical day (1200us).
  EXPECT_NE(f.sender->subflow(1)->state(), TcpConnection::State::kEstablished);
  f.sim.RunUntil(SimTime::Millis(2));
  EXPECT_EQ(f.sender->subflow(1)->state(), TcpConnection::State::kEstablished);
}

TEST(Mptcp, SchedulerSteersByActiveTdn) {
  MptcpFixture f;
  f.sim.RunUntil(SimTime::Micros(1100));  // packet day
  EXPECT_EQ(f.sender->active_subflow(), 0u);
  f.sim.RunUntil(SimTime::Micros(1300));  // optical day
  EXPECT_EQ(f.sender->active_subflow(), 1u);
  f.sim.RunUntil(SimTime::Micros(1500));  // back on packet
  EXPECT_EQ(f.sender->active_subflow(), 0u);
}

TEST(Mptcp, MetaProgressSpansBothSubflows) {
  MptcpFixture f;
  f.sim.RunUntil(SimTime::Millis(4));  // a couple of weeks
  EXPECT_GT(f.sender->meta_bytes_acked(), 0u);
  // Both subflows carried data.
  EXPECT_GT(f.sender->subflow(0)->bytes_acked(), 0u);
  EXPECT_GT(f.sender->subflow(1)->bytes_acked(), 0u);
  // Receiver-side in-order delivery tracks the sender.
  EXPECT_GT(f.receiver->meta_bytes_delivered(), 0u);
  EXPECT_GE(f.sender->meta_bytes_acked(), f.receiver->meta_bytes_delivered() / 2);
}

TEST(Mptcp, MetaDeliveryIsExactlyOnce) {
  MptcpFixture f;
  f.sim.RunUntil(SimTime::Millis(6));
  // Delivered meta bytes never exceed scheduled bytes even with
  // reinjection duplicates; duplicates are counted and discarded.
  const auto scheduled = f.sender->stats().scheduled_segments * 8940;
  EXPECT_LE(f.receiver->meta_bytes_delivered(), scheduled);
}

TEST(Mptcp, PinnedPacketsStrandAtToR) {
  MptcpFixture f;
  // During the optical day, subflow-0 traffic (pinned to the packet
  // network) strands in the ToR stashes — the strict subflow/path isolation
  // of §2.2.
  f.sim.RunUntil(SimTime::Micros(1300));
  EXPECT_GT(f.topo.port(1, 0)->pinned_waiting() +
                f.topo.port(0, 1)->pinned_waiting(), 0u);
}

TEST(Mptcp, ReinjectionRepairsStrandedTailUnderContention) {
  // With a rack of flows sharing the 16-packet VOQ, optical-tail data is
  // regularly stranded/dropped; the metas must reinject, and the receivers
  // see the resulting meta-level duplicates.
  ExperimentConfig cfg = PaperConfig(Variant::kMptcp);
  cfg.workload.num_flows = 16;
  Simulator sim;
  Random rng(cfg.seed);
  Topology topo(sim, rng, cfg.topology);
  RdcnController::Config rc;
  rc.schedule = cfg.schedule;
  rc.packet_mode = cfg.topology.packet_mode;
  rc.circuit_mode = cfg.topology.circuit_mode;
  RdcnController controller(sim, rc, {topo.port(0, 1), topo.port(1, 0)},
                            {topo.tor(0), topo.tor(1)});
  Workload workload(sim, topo, cfg.workload);
  controller.Start();
  workload.Start();
  sim.RunUntil(SimTime::Millis(20));
  std::uint64_t reinjections = 0, dups = 0, delivered = 0;
  for (auto& f : workload.flows()) {
    reinjections += f.mptcp_sender->stats().reinjections;
    dups += f.mptcp_receiver->stats().meta_duplicates;
    delivered += f.mptcp_receiver->meta_bytes_delivered();
  }
  EXPECT_GT(reinjections, 0u);
  EXPECT_GT(dups, 0u);
  EXPECT_GT(delivered, 10'000'000u);  // progress despite the stalls
}

TEST(Mptcp, ThroughputBelowTdtcp) {
  // The paper's headline ordering: MPTCP is the weakest of the multi-TDN
  // aware transports (41% below TDTCP in the paper's setting).
  ExperimentConfig mp = PaperConfig(Variant::kMptcp);
  mp.duration = SimTime::Millis(30);
  mp.warmup = SimTime::Millis(5);
  mp.workload.num_flows = 8;
  ExperimentConfig td = PaperConfig(Variant::kTdtcp);
  td.duration = mp.duration;
  td.warmup = mp.warmup;
  td.workload.num_flows = 8;
  const double mptcp_bps = RunExperiment(mp).goodput_bps;
  const double tdtcp_bps = RunExperiment(td).goodput_bps;
  EXPECT_LT(mptcp_bps, tdtcp_bps);
}

TEST(Mptcp, SubflowPacketsCarryPinAndDss) {
  MptcpFixture f;
  f.sim.RunUntil(SimTime::Millis(2));
  // Inspect sender-side subflow configuration effects indirectly: subflow 1
  // data is only acked during/after optical days, and DSS mappings exist.
  EXPECT_TRUE(f.sender->subflow(1)->config().mptcp);
  EXPECT_EQ(f.sender->subflow(1)->config().pin_path, 1);
  EXPECT_EQ(f.sender->subflow(0)->config().pin_path, 0);
}

}  // namespace
}  // namespace tdtcp
