// Adversarial-schedule robustness suite: the SchedulePerturbation engine,
// TdnManager retirement/revival under mid-flow TDN-count changes, the
// convergence oracle (trace/convergence.hpp), mixed tenant populations, and
// the historical RTO-backoff phase-locking failure as an executable canary.
// Also holds the regression tests for the validation that replaced the
// NDEBUG-silent asserts in schedule.cpp / tdn_manager.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "app/experiment.hpp"
#include "app/sweep.hpp"
#include "cc/registry.hpp"
#include "rdcn/perturbation.hpp"
#include "rdcn/schedule.hpp"
#include "sim/time.hpp"
#include "tdtcp/tdn_manager.hpp"
#include "trace/convergence.hpp"
#include "trace/tracepoints.hpp"

namespace tdtcp {
namespace {

ExperimentConfig ShortConfig(Variant v, int ms = 10) {
  ExperimentConfig cfg = PaperConfig(v);
  cfg.duration = SimTime::Millis(ms);
  cfg.warmup = SimTime::Millis(ms / 5);
  cfg.workload.num_flows = 4;
  cfg.sample_voq = false;
  cfg.sample_reorder = false;
  return cfg;
}

// A perturbation exercising every knob: skewed and jittered boundaries, a
// mid-flow rotation-period change, a TDN-count change down to one live TDN
// (and back), and a controller-restart window.
PerturbationConfig FullPerturbation() {
  PerturbationConfig p;
  p.day_skew = 0.2;
  p.jitter = SimTime::Micros(3);
  ScheduleChange faster;
  faster.at = SimTime::Millis(2);
  faster.day_length = SimTime::Micros(90);
  p.changes.push_back(faster);
  ScheduleChange shrink;
  shrink.at = SimTime::Millis(4);
  shrink.live_tdns = 1;
  p.changes.push_back(shrink);
  ScheduleChange regrow;
  regrow.at = SimTime::Millis(6);
  regrow.live_tdns = 2;
  p.changes.push_back(regrow);
  RestartWindow restart;
  restart.at = SimTime::Millis(5);
  restart.duration = SimTime::Micros(400);
  p.restarts.push_back(restart);
  return p;
}

// ---------------------------------------------------------------------------
// Validation regressions (formerly NDEBUG-silent asserts)
// ---------------------------------------------------------------------------

TEST(ScheduleValidation, RejectsDegenerateConfigs) {
  ScheduleConfig zero_day;
  zero_day.day_length = SimTime::Zero();
  EXPECT_THROW(Schedule{zero_day}, std::invalid_argument);

  ScheduleConfig negative_night;
  negative_night.night_length = SimTime::Picos(-1);
  EXPECT_THROW(Schedule{negative_night}, std::invalid_argument);

  ScheduleConfig no_days;
  no_days.num_days = 0;
  EXPECT_THROW(Schedule{no_days}, std::invalid_argument);

  ScheduleConfig bad_circuit;
  bad_circuit.circuit_day = 7;  // == num_days
  EXPECT_THROW(Schedule{bad_circuit}, std::invalid_argument);
}

TEST(ScheduleValidation, NoCircuitDaySentinelMakesAnAllPacketWeek) {
  ScheduleConfig cfg;
  cfg.circuit_day = ScheduleConfig::kNoCircuitDay;
  Schedule sched{cfg};
  for (int day = 0; day < 7; ++day) {
    const SimTime mid_day =
        sched.slot_length() * day + SimTime::Micros(90);
    EXPECT_EQ(sched.TdnAt(mid_day), TdnId{0}) << "day " << day;
  }
  // OptimalBits must not credit a circuit day that never occurs: one full
  // week at packet rate over the seven 180 us days.
  const double bits = sched.OptimalBits(sched.week_length(), 10e9, 100e9);
  EXPECT_NEAR(bits, 10e9 * 7 * 180e-6, 1.0);
}

TEST(ScheduleValidation, SlotAtRejectsNegativeTime) {
  Schedule sched{ScheduleConfig{}};
  EXPECT_THROW(sched.SlotAt(SimTime::Picos(-1)), std::invalid_argument);
  EXPECT_NO_THROW(sched.SlotAt(SimTime::Zero()));
}

TEST(TdnManagerValidation, RejectsZeroTdns) {
  EXPECT_THROW(TdnManager(0, MakeCcFactory("reno"), RttEstimator::Config{}, 10),
               std::invalid_argument);
}

TEST(TdnManagerValidation, RetireAboveRejectsZeroLive) {
  TdnManager mgr(2, MakeCcFactory("reno"), RttEstimator::Config{}, 10);
  EXPECT_THROW(mgr.RetireAbove(0), std::invalid_argument);
}

TEST(PerturbationValidation, RejectsBadConfigs) {
  {
    PerturbationConfig p;
    p.day_skew = 1.0;  // must be < 1
    EXPECT_THROW(SchedulePerturbation(p, 1), std::invalid_argument);
  }
  {
    PerturbationConfig p;
    p.day_skew = -0.1;
    EXPECT_THROW(SchedulePerturbation(p, 1), std::invalid_argument);
  }
  {
    PerturbationConfig p;
    p.jitter = SimTime::Picos(-1);
    EXPECT_THROW(SchedulePerturbation(p, 1), std::invalid_argument);
  }
  {
    PerturbationConfig p;
    ScheduleChange c;
    c.at = SimTime::Picos(-1);
    p.changes.push_back(c);
    EXPECT_THROW(SchedulePerturbation(p, 1), std::invalid_argument);
  }
  {
    PerturbationConfig p;
    RestartWindow w;
    w.at = SimTime::Picos(-1);
    p.restarts.push_back(w);
    EXPECT_THROW(SchedulePerturbation(p, 1), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// SchedulePerturbation engine mechanics
// ---------------------------------------------------------------------------

TEST(SchedulePerturbation, SkewStretchesEvenShrinksOdd) {
  PerturbationConfig p;
  p.day_skew = 0.25;  // no jitter: skew alone must be exact
  SchedulePerturbation eng(p, 7);
  const SimTime base = SimTime::Micros(180);
  EXPECT_EQ(eng.PerturbDay(0, base).picos(),
            SimTime::Micros(225).picos());  // 180 * 1.25
  EXPECT_EQ(eng.PerturbDay(1, base).picos(),
            SimTime::Micros(135).picos());  // 180 * 0.75
  EXPECT_EQ(eng.PerturbNight(SimTime::Micros(20)).picos(),
            SimTime::Micros(20).picos());  // skew is a day-length property
  EXPECT_EQ(eng.stats().skewed_days, 2u);
  EXPECT_EQ(eng.stats().jittered_boundaries, 0u);
}

TEST(SchedulePerturbation, JitterIsDeterministicBoundedAndSeedSensitive) {
  PerturbationConfig p;
  p.jitter = SimTime::Micros(1000);  // far above base: clamp must kick in
  const SimTime base = SimTime::Micros(180);

  SchedulePerturbation a(p, 42), b(p, 42), c(p, 43);
  bool any_diff_seed = false;
  for (std::uint32_t day = 0; day < 64; ++day) {
    const SimTime da = a.PerturbDay(day, base);
    const SimTime db = b.PerturbDay(day, base);
    const SimTime dc = c.PerturbDay(day, base);
    EXPECT_EQ(da.picos(), db.picos()) << "day " << day;
    any_diff_seed |= da.picos() != dc.picos();
    // Clamped so a segment never collapses below a quarter of nominal.
    EXPECT_GE(da.picos(), base.picos() / 4) << "day " << day;
  }
  EXPECT_TRUE(any_diff_seed);
  EXPECT_GT(a.stats().jittered_boundaries, 0u);
}

TEST(SchedulePerturbation, ChangesConsumedInConfigOrder) {
  PerturbationConfig p;
  ScheduleChange first;
  first.at = SimTime::Micros(100);
  first.live_tdns = 1;
  ScheduleChange second;
  second.at = SimTime::Micros(300);
  second.day_length = SimTime::Micros(90);
  p.changes = {first, second};
  SchedulePerturbation eng(p, 1);

  EXPECT_EQ(eng.PendingChange(SimTime::Micros(50)), nullptr);
  const ScheduleChange* c1 = eng.PendingChange(SimTime::Micros(400));
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1->live_tdns, 1);  // first in config order, even though both due
  eng.MarkApplied();
  const ScheduleChange* c2 = eng.PendingChange(SimTime::Micros(400));
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c2->day_length.picos(), SimTime::Micros(90).picos());
  eng.MarkApplied();
  EXPECT_EQ(eng.PendingChange(SimTime::Micros(400)), nullptr);
  EXPECT_EQ(eng.stats().changes_applied, 2u);
}

TEST(SchedulePerturbation, RestartHoldCoversWindow) {
  PerturbationConfig p;
  RestartWindow w;
  w.at = SimTime::Micros(100);
  w.duration = SimTime::Micros(50);
  p.restarts.push_back(w);
  SchedulePerturbation eng(p, 1);

  EXPECT_TRUE(eng.RestartHold(SimTime::Micros(99)).IsZero());
  const SimTime hold = eng.RestartHold(SimTime::Micros(120));
  EXPECT_EQ(hold.picos(), SimTime::Micros(30).picos());  // remaining window
  EXPECT_TRUE(eng.RestartHold(SimTime::Micros(150)).IsZero());
  EXPECT_EQ(eng.stats().restart_holds, 1u);
}

// ---------------------------------------------------------------------------
// TdnManager retirement / revival (TDN-count changes)
// ---------------------------------------------------------------------------

TEST(TdnRetirement, ActiveNeverLeftRetired) {
  TdnManager mgr(4, MakeCcFactory("reno"), RttEstimator::Config{}, 10);
  mgr.SwitchTo(2);
  ASSERT_EQ(mgr.active_id(), 2);

  EXPECT_TRUE(mgr.RetireAbove(2));  // active was retired -> moved to 0
  EXPECT_EQ(mgr.active_id(), 0);
  EXPECT_FALSE(mgr.retired(0));
  EXPECT_FALSE(mgr.retired(1));
  EXPECT_TRUE(mgr.retired(2));
  EXPECT_TRUE(mgr.retired(3));
  EXPECT_EQ(mgr.live_tdns(), 2u);
  EXPECT_EQ(mgr.retire_events(), 1u);

  // Retiring nothing the active uses does not move it.
  mgr.SwitchTo(1);
  EXPECT_FALSE(mgr.RetireAbove(2));
  EXPECT_EQ(mgr.active_id(), 1);
}

TEST(TdnRetirement, DrainedRevivalReinitializes) {
  TdnManager mgr(2, MakeCcFactory("reno"), RttEstimator::Config{}, 10);
  mgr.state(1).cwnd = 77;
  mgr.state(1).ssthresh = 5;
  mgr.RetireAbove(1);
  ASSERT_TRUE(mgr.retired(1));

  // Fully drained (no packets_out / retrans_out): revival is a fresh start.
  mgr.SwitchTo(1);
  EXPECT_FALSE(mgr.retired(1));
  EXPECT_EQ(mgr.active().cwnd, 10u);
  EXPECT_EQ(mgr.active().ssthresh, 0x7fffffffu);
  ASSERT_NE(mgr.active().cc, nullptr);
}

TEST(TdnRetirement, UndrainedRevivalCarriesStateOver) {
  TdnManager mgr(2, MakeCcFactory("reno"), RttEstimator::Config{}, 10);
  mgr.state(1).cwnd = 99;
  mgr.state(1).packets_out = 5;  // data still in flight on the retired TDN
  mgr.RetireAbove(1);
  ASSERT_TRUE(mgr.retired(1));
  // Accounting survives retirement: the scoreboard still sums this TDN.
  EXPECT_EQ(mgr.TotalPacketsOut(), 5u);

  mgr.SwitchTo(1);
  EXPECT_FALSE(mgr.retired(1));
  EXPECT_EQ(mgr.active().cwnd, 99u);  // carry-over, not a reset
  EXPECT_EQ(mgr.active().packets_out, 5u);
}

TEST(TdnRetirement, RegrowUnretiresAndEmitsTracepoint) {
  Simulator sim;
  TraceRing ring(64);
  TdnManager mgr(4, MakeCcFactory("reno"), RttEstimator::Config{}, 10);
  mgr.SetTrace(&ring, &sim, /*flow=*/9);

  mgr.RetireAbove(1);
  EXPECT_EQ(mgr.live_tdns(), 1u);
  mgr.RetireAbove(4);  // regrow: everything live again, drained sets fresh
  EXPECT_EQ(mgr.live_tdns(), 4u);
  for (TdnId i = 0; i < 4; ++i) EXPECT_FALSE(mgr.retired(i));

  std::uint64_t retire_records = 0;
  for (const TraceRecord& r : ring.Snapshot()) {
    if (static_cast<TracePoint>(r.point) != TracePoint::kTdnRetire) continue;
    ++retire_records;
    EXPECT_EQ(r.flow, 9u);
  }
  EXPECT_EQ(retire_records, 2u);
  EXPECT_EQ(mgr.retire_events(), 2u);
}

// ---------------------------------------------------------------------------
// Convergence oracle on synthetic series
// ---------------------------------------------------------------------------

std::vector<CwndSample> FlatSeries(std::size_t n, std::uint32_t cwnd,
                                   std::int64_t step_ps = 1000) {
  std::vector<CwndSample> s;
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back({static_cast<std::int64_t>(i) * step_ps, cwnd});
  }
  return s;
}

TEST(ConvergenceOracle, FlatSeriesConverges) {
  const SeriesVerdict v = ClassifySeries(FlatSeries(20, 50), {});
  EXPECT_EQ(v.verdict, ConvergenceVerdict::kConverged);
  EXPECT_DOUBLE_EQ(v.amplitude, 0.0);
  EXPECT_DOUBLE_EQ(v.mean_cwnd, 50.0);
}

TEST(ConvergenceOracle, ShortSeriesIsInsufficient) {
  const SeriesVerdict v = ClassifySeries(FlatSeries(5, 50), {});
  EXPECT_EQ(v.verdict, ConvergenceVerdict::kInsufficient);
}

TEST(ConvergenceOracle, LowFlatSeriesIsStarved) {
  const SeriesVerdict v = ClassifySeries(FlatSeries(20, 1), {});
  EXPECT_EQ(v.verdict, ConvergenceVerdict::kStarved);
}

TEST(ConvergenceOracle, RegularSquareWaveOscillates) {
  // Period 2 ms: collapse to 2, ramp to 40, four full cycles.
  std::vector<CwndSample> s;
  for (int cycle = 0; cycle < 4; ++cycle) {
    const std::int64_t t0 = cycle * 2'000'000'000ll;  // 2 ms in ps
    s.push_back({t0, 2});
    s.push_back({t0 + 500'000'000ll, 2});
    s.push_back({t0 + 1'000'000'000ll, 40});
    s.push_back({t0 + 1'500'000'000ll, 40});
  }
  const SeriesVerdict v = ClassifySeries(s, {});
  EXPECT_EQ(v.verdict, ConvergenceVerdict::kOscillating);
  EXPECT_GE(v.cycles, 3u);
  EXPECT_NEAR(v.period_us, 2000.0, 1.0);
  EXPECT_NEAR(v.amplitude, 0.95, 0.01);
}

TEST(ConvergenceOracle, IrregularCyclesAreNotOscillation) {
  // Same amplitude and cycle count as above, but the collapse times are
  // wildly irregular (one-off loss episodes, not a schedule-locked limit
  // cycle): period CV exceeds the threshold, so the series converges.
  std::vector<CwndSample> s;
  const std::int64_t tops_ms[] = {1, 2, 20, 21};
  std::int64_t t = 0;
  for (std::int64_t top_ms : tops_ms) {
    s.push_back({t, 2});
    s.push_back({top_ms * 1'000'000'000ll, 40});
    t = top_ms * 1'000'000'000ll + 1;
  }
  const SeriesVerdict v = ClassifySeries(s, {});
  EXPECT_EQ(v.cycles, 4u);
  EXPECT_EQ(v.verdict, ConvergenceVerdict::kConverged);
}

TEST(ConvergenceOracle, WarmupFilterDiscardsEarlySamples) {
  ConvergenceConfig cfg;
  cfg.from_ps = 100'000;  // all samples (step 1000 ps, n=20) are earlier
  const SeriesVerdict v = ClassifySeries(FlatSeries(20, 50), cfg);
  EXPECT_EQ(v.verdict, ConvergenceVerdict::kInsufficient);
  EXPECT_EQ(v.num_points, 0u);
}

TEST(ConvergenceOracle, ReportRollsUpPerFlowAndTracksWorstOscillator) {
  // Flow 1: converged on TDN 0. Flow 2: oscillating on TDN 0, converged on
  // TDN 1 (oscillation wins the flow rollup). Flow 3: starved.
  std::vector<TraceRecord> records;
  auto emit = [&records](std::uint64_t flow, std::uint64_t tdn,
                         std::int64_t t_ps, std::uint64_t cwnd) {
    TraceRecord r{};
    r.time_ps = t_ps;
    r.point = static_cast<std::uint16_t>(TracePoint::kTcpCwndUpdate);
    r.flow = flow;
    r.a0 = tdn;
    r.a1 = cwnd;
    records.push_back(r);
  };
  for (int i = 0; i < 20; ++i) emit(1, 0, i * 1000, 50);
  for (int cycle = 0; cycle < 4; ++cycle) {
    const std::int64_t t0 = cycle * 2'000'000'000ll;
    emit(2, 0, t0, 2);
    emit(2, 0, t0 + 1'000'000'000ll, 40);
  }
  for (int i = 0; i < 20; ++i) emit(2, 1, i * 1000, 30);
  for (int i = 0; i < 20; ++i) emit(3, 0, i * 1000, 1);

  const ConvergenceReport report = ClassifyConvergence(records, {});
  EXPECT_EQ(report.flows_converged, 1u);
  EXPECT_EQ(report.flows_oscillating, 1u);
  EXPECT_EQ(report.flows_starved, 1u);
  EXPECT_EQ(report.flows_insufficient, 0u);
  ASSERT_EQ(report.series.size(), 4u);
  EXPECT_NEAR(report.worst_amplitude, 0.95, 0.01);
  EXPECT_NEAR(report.worst_period_us, 2000.0, 1.0);
}

// ---------------------------------------------------------------------------
// End-to-end: perturbed runs
// ---------------------------------------------------------------------------

TEST(PerturbedRun, DeterministicAndDistinctFromNominal) {
  ExperimentConfig cfg = ShortConfig(Variant::kTdtcp)
                             .WithTrace(1u << 14)
                             .WithSchedulePerturbation(FullPerturbation());
  const ExperimentResult a = RunExperiment(cfg);
  const ExperimentResult b = RunExperiment(cfg);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.schedule_changes, b.schedule_changes);
  EXPECT_GT(a.schedule_changes, 0u);
  EXPECT_GT(a.restart_holds, 0u);

  const ExperimentResult nominal =
      RunExperiment(ShortConfig(Variant::kTdtcp).WithTrace(1u << 14));
  EXPECT_NE(a.trace_hash, nominal.trace_hash);
  EXPECT_EQ(nominal.schedule_changes, 0u);
  EXPECT_EQ(nominal.tdn_reconfigs, 0u);
}

TEST(PerturbedRun, TdnCountChangeReachesEveryConnection) {
  ExperimentConfig cfg = ShortConfig(Variant::kTdtcp)
                             .WithTrace(1u << 14)
                             .WithSchedulePerturbation(FullPerturbation());
  const ExperimentResult r = RunExperiment(cfg);
  // Two live_tdns changes, delivered over the management plane to all four
  // flows' senders and receivers.
  EXPECT_GE(r.schedule_changes, 3u);
  EXPECT_GT(r.tdn_reconfigs, 0u);
  EXPECT_GT(r.total_bytes, 0u);
}

TEST(PerturbedRun, SweepBitIdenticalAtAnyJobCount) {
  // The headline robustness guarantee: mid-flow schedule changes, restarts,
  // faults, and churn riding together still give jobs=1 == jobs=N
  // bit-identity over every scalar metric (trace and churn hashes included).
  FaultPlan fault;
  fault.control.notify_loss_rate = 0.1;
  fault.control.notify_delay_mean = SimTime::Micros(5);

  SweepSpec spec;
  spec.base = ShortConfig(Variant::kTdtcp)
                  .WithTrace(1u << 14)
                  .WithChurn(20, SimTime::Micros(200))
                  .WithFault(fault)
                  .WithSchedulePerturbation(FullPerturbation());
  spec.variants = {Variant::kTdtcp, Variant::kCubic};
  spec.seeds = {1, 2};

  spec.jobs = 1;
  const SweepResult serial = RunSweep(spec);
  spec.jobs = 4;
  const SweepResult parallel = RunSweep(spec);

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t c = 0; c < serial.cells.size(); ++c) {
    ASSERT_EQ(serial.cells[c].runs.size(), parallel.cells[c].runs.size());
    for (std::size_t k = 0; k < serial.cells[c].runs.size(); ++k) {
      const ExperimentResult& s = serial.cells[c].runs[k].result;
      const ExperimentResult& p = parallel.cells[c].runs[k].result;
      EXPECT_EQ(s.trace_hash, p.trace_hash);
      EXPECT_EQ(s.churn_hash, p.churn_hash);
      const auto sm = ScalarMetrics(s);
      const auto pm = ScalarMetrics(p);
      ASSERT_EQ(sm.size(), pm.size());
      for (std::size_t m = 0; m < sm.size(); ++m) {
        EXPECT_EQ(sm[m].second, pm[m].second)
            << serial.cells[c].label << " metric " << sm[m].first;
      }
    }
  }
}

TEST(PerturbedRun, EveryChurnConnectionReachesDefiniteCloseReason) {
  // Reconfiguration + restarts + control-plane faults + churn: every opened
  // connection must still reach kClosed with a definite (non-kNone) reason.
  FaultPlan fault;
  fault.fabric.loss_rate = 0.02;
  fault.control.notify_loss_rate = 0.1;

  ExperimentConfig cfg = ShortConfig(Variant::kTdtcp, 15)
                             .WithChurn(40, SimTime::Micros(150))
                             .WithFault(fault)
                             .WithSchedulePerturbation(FullPerturbation());
  const ExperimentResult r = RunExperiment(cfg);
  EXPECT_GT(r.churn.opened, 0u);
  EXPECT_TRUE(r.churn_all_closed);
  EXPECT_EQ(r.churn.reasons[static_cast<std::size_t>(CloseReason::kNone)], 0u);
  std::uint64_t reason_sum = 0;
  for (std::size_t i = 0; i < kNumCloseReasons; ++i) {
    reason_sum += r.churn.reasons[i];
  }
  EXPECT_EQ(reason_sum, r.churn.closed);
}

// ---------------------------------------------------------------------------
// Mixed tenant populations
// ---------------------------------------------------------------------------

TEST(TenantMix, VariantsCoexistAndDrawsAreDeterministic) {
  ExperimentConfig cfg = ShortConfig(Variant::kTdtcp, 20)
                             .WithChurn(90, SimTime::Micros(100))
                             .WithTenantMix({{Variant::kTdtcp, 2.0},
                                             {Variant::kCubic, 1.0},
                                             {Variant::kDctcp, 1.0}});
  const ExperimentResult a = RunExperiment(cfg);
  const ExperimentResult b = RunExperiment(cfg);
  EXPECT_EQ(a.churn_hash, b.churn_hash);
  EXPECT_GT(a.churn.opened, 0u);

  const auto opened_of = [&a](Variant v) {
    return a.churn.opened_by_variant[static_cast<std::size_t>(v)];
  };
  EXPECT_GT(opened_of(Variant::kTdtcp), 0u);
  EXPECT_GT(opened_of(Variant::kCubic), 0u);
  EXPECT_GT(opened_of(Variant::kDctcp), 0u);
  std::uint64_t by_variant_sum = 0;
  for (std::size_t i = 0; i < kNumVariants; ++i) {
    by_variant_sum += a.churn.opened_by_variant[i];
    EXPECT_EQ(a.churn.opened_by_variant[i],
              b.churn.opened_by_variant[i]);
  }
  EXPECT_EQ(by_variant_sum, a.churn.opened);
}

TEST(TenantMix, SurvivesScheduleReconfiguration) {
  ExperimentConfig cfg = ShortConfig(Variant::kTdtcp, 15)
                             .WithChurn(40, SimTime::Micros(150))
                             .WithTenantMix({{Variant::kTdtcp, 1.0},
                                             {Variant::kCubic, 1.0}})
                             .WithSchedulePerturbation(FullPerturbation());
  const ExperimentResult r = RunExperiment(cfg);
  EXPECT_GT(r.churn.opened, 0u);
  EXPECT_TRUE(r.churn_all_closed);
  EXPECT_GT(r.schedule_changes, 0u);
}

TEST(TenantMix, RejectsMptcpTenantsAndNonPositiveWeights) {
  {
    ExperimentConfig cfg = ShortConfig(Variant::kTdtcp)
                               .WithChurn(10)
                               .WithTenantMix({{Variant::kMptcp, 1.0}});
    EXPECT_THROW(RunExperiment(cfg), std::invalid_argument);
  }
  {
    ExperimentConfig cfg = ShortConfig(Variant::kTdtcp)
                               .WithChurn(10)
                               .WithTenantMix({{Variant::kTdtcp, 0.0}});
    EXPECT_THROW(RunExperiment(cfg), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// The RTO-backoff phase-locking canary
// ---------------------------------------------------------------------------

// The historical failure this suite exists to keep dead: schedule-oblivious
// cubic flows recovering on pure RTO (no RACK/TLP), starved of RTT samples
// during recovery (sack_rtt off, as on pre-sack_rtt Linux) and with a
// minimum RTO in the same decade as the 1.4 ms rotation week. Every
// backed-off retransmission then lands in the same congested segment of the
// schedule, so cwnd collapses to one and re-ramps once per week, forever.
// The oracle must certify that limit cycle, and must NOT flag the identical
// workload when SACK-based RTT sampling keeps the RTO estimate live (there
// the timeouts stay tight and recovery completes inside a day).
ExperimentConfig CanaryConfig(bool sack_rtt) {
  ExperimentConfig cfg = PaperConfig(Variant::kCubic)
                             .WithFlows(2)  // low load: healthy cubic settles
                             .WithDurationMs(60)
                             .WithSampling(false, false)
                             .WithSampleInterval(SimTime::Millis(1))
                             .WithTrace(1u << 18)
                             .WithRecovery(RecoveryMode::kOff);
  // Sparse random loss keeps flows dipping into recovery without saturating
  // the fabric; whether they come back out cleanly is what sack_rtt decides.
  FaultPlan loss;
  loss.fabric.loss_rate = 0.005;
  cfg.WithFault(loss);
  cfg.workload.base.sack_rtt = sack_rtt;
  if (!sack_rtt) {
    // RTO floor ~ rotation week (8 x 180 us day): the phase-lock ingredient.
    cfg.workload.base.rtt.min_rto = SimTime::Micros(1440);
    cfg.workload.base.rtt.initial_rto = SimTime::Micros(1440);
  }
  return cfg;
}

TEST(PhaseLockCanary, SackRttKeepsLowLoadCubicConverged) {
  const ExperimentResult r = RunExperiment(CanaryConfig(/*sack_rtt=*/true));
  EXPECT_EQ(r.stability_oscillating, 0u);
  EXPECT_EQ(r.stability_starved, 0u);
  EXPECT_EQ(r.stability_converged, 2u);
}

TEST(PhaseLockCanary, DisablingSackRttPhaseLocksWithTheRotationWeek) {
  const ExperimentResult r = RunExperiment(CanaryConfig(/*sack_rtt=*/false));
  EXPECT_GT(r.stability_oscillating, 0u);
  // The certified limit cycle rides the schedule: its period is a multiple
  // of the 1.4 ms rotation week.
  EXPECT_GT(r.stability_worst_period_us, 1000.0);
}

}  // namespace
}  // namespace tdtcp
