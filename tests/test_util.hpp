// Shared test scaffolding.
//
// `LoopbackHarness` wires a sender-side Host whose uplink feeds a capture
// sink, so tests can inspect every packet a TcpConnection emits and inject
// hand-crafted responses with exact timing — the packet formats are plain
// structs, which makes the appendix-A.1 reordering scenarios directly
// constructible.
//
// `PairHarness` wires two hosts back-to-back through real links for
// end-to-end transfers without the full RDCN topology.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "net/host.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"

namespace tdtcp::test {

class CaptureSink : public PacketSink {
 public:
  void HandlePacket(Packet&& p) override { packets.push_back(std::move(p)); }

  // Pops the oldest captured packet.
  Packet Pop() {
    Packet p = std::move(packets.front());
    packets.pop_front();
    return p;
  }
  bool Empty() const { return packets.empty(); }

  std::deque<Packet> packets;
};

// A sender host whose transmissions land in `out` (after a tiny, exact link
// delay), plus helpers to synthesize the receiver side by hand.
class LoopbackHarness {
 public:
  explicit LoopbackHarness(Simulator& sim, NodeId host_id = 0)
      : sim_(sim), host(sim, host_id) {
    Link::Config lc;
    lc.rate_bps = 1'000'000'000'000;  // effectively instant serialization
    lc.propagation = SimTime::Nanos(1);
    lc.queue.capacity_packets = 10'000;
    uplink_ = std::make_unique<Link>(sim, lc, &out);
    host.AttachUplink(uplink_.get());
  }

  // Drains pending events so captured packets materialize.
  void Settle() { sim_.RunUntil(sim_.now() + SimTime::Micros(1)); }

  // A minimal SYN/ACK matching a client SYN.
  static Packet SynAckFor(const Packet& syn, bool td_capable, std::uint8_t tdns) {
    Packet p;
    p.type = PacketType::kData;
    p.flow = syn.flow;
    p.src = syn.dst;
    p.dst = syn.src;
    p.syn = true;
    p.ack = 1;
    p.size_bytes = 60;
    p.td_capable = td_capable;
    p.td_num_tdns = tdns;
    return p;
  }

  // A pure cumulative ACK (optionally with SACK blocks and a TDN tag).
  static Packet Ack(FlowId flow, std::uint64_t ack,
                    std::vector<SackBlock> sacks = {}, TdnId ack_tdn = kNoTdn) {
    Packet p;
    p.type = PacketType::kAck;
    p.flow = flow;
    p.ack = ack;
    p.size_bytes = 60;
    p.rcv_window = 1u << 30;
    p.has_rwnd = true;
    p.ack_tdn = ack_tdn;
    p.num_sack = static_cast<std::uint8_t>(sacks.size());
    for (std::size_t i = 0; i < sacks.size() && i < kMaxSackBlocks; ++i) {
      p.sack[i] = sacks[i];
    }
    return p;
  }

  Simulator& sim_;
  Host host;
  CaptureSink out;

 private:
  std::unique_ptr<Link> uplink_;
};

// Two hosts joined by symmetric links (no ToR, no schedule): enough for
// end-to-end handshake/transfer tests with controllable loss via tiny
// queues.
struct PairOptions {
  std::uint64_t rate_bps = 10'000'000'000;
  SimTime delay = SimTime::Micros(10);
  std::uint32_t queue_capacity = 1000;
};

class PairHarness {
 public:
  using Options = PairOptions;

  explicit PairHarness(Simulator& sim, Options opt = Options())
      : a(sim, 0), b(sim, 1) {
    Link::Config ab;
    ab.rate_bps = opt.rate_bps;
    ab.propagation = opt.delay;
    ab.queue.capacity_packets = opt.queue_capacity;
    ab.name = "a->b";
    Link::Config ba = ab;
    ba.name = "b->a";
    ab_link = std::make_unique<Link>(sim, ab, &b);
    ba_link = std::make_unique<Link>(sim, ba, &a);
    a.AttachUplink(ab_link.get());
    b.AttachUplink(ba_link.get());
  }

  Host a;
  Host b;
  std::unique_ptr<Link> ab_link;
  std::unique_ptr<Link> ba_link;
};

}  // namespace tdtcp::test
