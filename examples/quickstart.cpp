// Quickstart: run one TDTCP flow over the paper's reconfigurable network
// and print its goodput against the analytic bounds.
//
//   $ ./examples/quickstart
//
// This is the smallest end-to-end use of the library: build a topology,
// start the RDCN schedule controller, create a TDTCP sender/receiver pair,
// and let the flow run for a few milliseconds of simulated time.
#include <cstdio>

#include "app/experiment.hpp"

using namespace tdtcp;

int main() {
  ExperimentConfig cfg = PaperConfig(Variant::kTdtcp)
                             .WithFlows(1)
                             .WithDuration(SimTime::Millis(50))
                             .WithWarmup(SimTime::Millis(5));

  std::printf("Running one TDTCP flow for %lld ms of simulated time...\n",
              static_cast<long long>(cfg.duration.millis()));
  ExperimentResult r = RunExperiment(cfg);

  const Schedule schedule(cfg.schedule);
  const double window_s = (cfg.duration - cfg.warmup).seconds();
  const double optimal_bps =
      schedule.OptimalBits(schedule.week_length(),
                           cfg.topology.packet_mode.rate_bps,
                           cfg.topology.circuit_mode.rate_bps) /
      schedule.week_length().seconds();
  const double packet_only_bps =
      static_cast<double>(cfg.topology.packet_mode.rate_bps);

  std::printf("\n  schedule: %u days of %lld us + %lld us nights, circuit on day %u\n",
              cfg.schedule.num_days,
              static_cast<long long>(cfg.schedule.day_length.micros()),
              static_cast<long long>(cfg.schedule.night_length.micros()),
              cfg.schedule.circuit_day);
  std::printf("  measurement window: %.1f ms\n\n", window_s * 1e3);
  std::printf("  %-22s %8.2f Gbps\n", "optimal (analytic)", optimal_bps / 1e9);
  std::printf("  %-22s %8.2f Gbps\n", "tdtcp (measured)", r.goodput_bps / 1e9);
  std::printf("  %-22s %8.2f Gbps\n", "packet only (analytic)", packet_only_bps / 1e9);
  std::printf("\n  retransmissions: %llu, timeouts: %llu, TDN-reorder exemptions: %llu\n",
              static_cast<unsigned long long>(r.retransmissions),
              static_cast<unsigned long long>(r.timeouts),
              static_cast<unsigned long long>(r.cross_tdn_exemptions));
  return 0;
}
