// Compare every transport variant on the paper's RDCN configuration and
// print a throughput/diagnostics table (the headline §5.2 comparison).
//
//   $ ./examples/rdcn_compare [duration_ms] [num_flows]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "app/experiment.hpp"

using namespace tdtcp;

int main(int argc, char** argv) {
  const int duration_ms = argc > 1 ? std::atoi(argv[1]) : 100;
  const int num_flows = argc > 2 ? std::atoi(argv[2]) : 8;

  const std::vector<Variant> variants = {
      Variant::kTdtcp,   Variant::kRetcpDyn, Variant::kRetcp, Variant::kDctcp,
      Variant::kCubic,   Variant::kMptcp,    Variant::kReno,
  };

  ExperimentConfig base = PaperConfig(Variant::kCubic);
  const Schedule schedule(base.schedule);
  const double optimal_bps =
      schedule.OptimalBits(schedule.week_length(),
                           base.topology.packet_mode.rate_bps,
                           base.topology.circuit_mode.rate_bps) /
      schedule.week_length().seconds();

  std::printf("RDCN variant comparison: %d flows, %d ms simulated\n",
              num_flows, duration_ms);
  std::printf("optimal %.2f Gbps, packet-only %.2f Gbps\n\n",
              optimal_bps / 1e9,
              base.topology.packet_mode.rate_bps / 1e9);
  std::printf("%-10s %9s %8s %7s %7s %7s %7s %8s\n", "variant", "goodput",
              "of-opt", "rtx", "undo", "rto", "exempt", "spurious");

  for (Variant v : variants) {
    ExperimentConfig cfg = PaperConfig(v);
    cfg.duration = SimTime::Millis(duration_ms);
    cfg.warmup = SimTime::Millis(duration_ms / 10);
    cfg.workload.num_flows = static_cast<std::uint32_t>(num_flows);
    ExperimentResult r = RunExperiment(cfg);

    std::printf("%-10s %6.2f Gb %7.1f%% %7llu %7llu %7llu %7llu %8llu\n",
                VariantName(v), r.goodput_bps / 1e9,
                100.0 * r.goodput_bps / optimal_bps,
                static_cast<unsigned long long>(r.retransmissions),
                static_cast<unsigned long long>(r.undo_events),
                static_cast<unsigned long long>(r.timeouts),
                static_cast<unsigned long long>(r.cross_tdn_exemptions),
                static_cast<unsigned long long>(r.duplicate_segments));
  }
  return 0;
}
