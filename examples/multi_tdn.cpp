// Beyond the bimodal fabric: TDTCP with three TDNs.
//
// §6 notes that reTCP presumes a bimodal fabric while TDTCP supports "an
// arbitrary number of distinct TDNs with various properties". This example
// builds the network objects directly (no experiment harness) — a rotation
// between a packet network and two different optical circuit generations —
// and shows per-TDN state of a TDTCP connection after it converges.
//
//   $ ./examples/multi_tdn
#include <cstdio>

#include "app/workload.hpp"
#include "cc/registry.hpp"
#include "net/topology.hpp"
#include "rdcn/controller.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"

using namespace tdtcp;

int main() {
  Simulator sim;
  Random rng(1);

  TopologyConfig tc;
  tc.hosts_per_rack = 4;
  Topology topo(sim, rng, tc);

  // Three network personalities. The controller below rotates: slow optical
  // on day 2, fast optical on day 5, packet otherwise.
  const NetworkMode packet{0, 10'000'000'000, SimTime::Micros(48), false};
  const NetworkMode slow_optical{2, 40'000'000'000, SimTime::Micros(30), true};
  const NetworkMode fast_optical{1, 100'000'000'000, SimTime::Micros(18), true};

  // Drive the fabric by hand: 6 x 200us slots, nights of 20us.
  FabricPort* fwd = topo.port(0, 1);
  FabricPort* rev = topo.port(1, 0);
  // Events carry a single pointer to this bundle (bounded inline capture).
  struct DayEnv {
    Simulator& sim;
    Topology& topo;
    FabricPort* fwd;
    FabricPort* rev;
    std::function<void(int)> run_day;
  } env{sim, topo, fwd, rev, {}};
  env.run_day = [e = &env, &packet, &slow_optical, &fast_optical](int day) {
    const NetworkMode& mode =
        day == 2 ? slow_optical : (day == 5 ? fast_optical : packet);
    e->fwd->SetMode(mode);
    e->rev->SetMode(mode);
    e->fwd->SetBlackout(false);
    e->rev->SetBlackout(false);
    e->topo.tor(0)->NotifyHosts(mode.tdn);
    e->topo.tor(1)->NotifyHosts(mode.tdn);
    e->sim.Schedule(SimTime::Micros(180), [e, day, tdn = mode.tdn] {
      e->fwd->SetBlackout(true);
      e->rev->SetBlackout(true);
      if (tdn != 0) {
        e->topo.tor(0)->NotifyHosts(0);
        e->topo.tor(1)->NotifyHosts(0);
      }
      e->sim.Schedule(SimTime::Micros(20),
                      [e, day] { e->run_day((day + 1) % 6); });
    });
  };
  std::function<void(int)>& run_day = env.run_day;

  TcpConfig cfg;
  cfg.mss = 8940;
  cfg.cc_factory = MakeCcFactory("cubic");
  cfg.tdtcp_enabled = true;
  cfg.num_tdns = 3;
  TcpConnection receiver(sim, topo.host(1, 0), 1, topo.host_id(0, 0), cfg);
  TcpConnection sender(sim, topo.host(0, 0), 1, topo.host_id(1, 0), cfg);
  receiver.Listen();
  sender.Connect();
  sender.SetUnlimitedData(true);

  run_day(0);
  sim.RunUntil(SimTime::Millis(30));

  std::printf("TDTCP over a 3-TDN rotation (30 ms):\n\n");
  std::printf("  negotiated TDNs: %zu, switches: %llu\n",
              sender.tdns().num_tdns(),
              static_cast<unsigned long long>(sender.stats().tdn_switches));
  std::printf("\n  %-4s %8s %10s %10s %12s\n", "tdn", "cwnd", "srtt_us",
              "bytes", "description");
  const char* desc[] = {"packet 10G/~100us", "fast optical 100G/~40us",
                        "slow optical 40G/~64us"};
  for (TdnId t = 0; t < 3; ++t) {
    const TdnState& st = sender.tdns().state(t);
    std::printf("  %-4d %8u %10lld %10llu   %s\n", t, st.cwnd,
                static_cast<long long>(st.rtt.srtt().micros()),
                static_cast<unsigned long long>(st.bytes_acked), desc[t]);
  }
  std::printf("\n  total: %.2f MB in 30 ms = %.2f Gbps "
              "(packet-only would be 10 Gbps)\n",
              sender.bytes_acked() / 1e6,
              sender.bytes_acked() * 8.0 / 30e-3 / 1e9);
  return 0;
}
