// §3.5 generality: TDTCP outside the data center.
//
// Satellite connectivity has a periodic strong/weak pattern as satellites
// orbit: while the signal is strong the satellite link is used; when it
// fades, traffic falls back to fiber between ground stations. Only one link
// is active at a time and each condition recurs — exactly TDTCP's operating
// assumption. This example models the handover cycle with the RDCN
// scheduler (TDN 0 = ground fiber, TDN 1 = satellite pass) and compares
// TDTCP against single-path CUBIC across handovers.
//
//   $ ./examples/satellite [seconds]
#include <cstdio>
#include <cstdlib>

#include "app/experiment.hpp"

using namespace tdtcp;

int main(int argc, char** argv) {
  const int seconds = argc > 1 ? std::atoi(argv[1]) : 4;

  auto configure = [&](Variant v) {
    ExperimentConfig cfg = PaperConfig(v);
    // Ground fiber: 500 Mbps, ~30 ms RTT (long terrestrial path).
    cfg.topology.packet_mode =
        NetworkMode{0, 500'000'000, SimTime::Millis(14), false};
    // Satellite pass: 1.5 Gbps, ~10 ms RTT (LEO).
    cfg.topology.circuit_mode =
        NetworkMode{1, 1'500'000'000, SimTime::Millis(4), true};
    // 120 ms satellite passes alternating with 120 ms on fiber,
    // 5 ms handover gaps; the "week" is one strong/weak cycle.
    cfg.schedule.day_length = SimTime::Millis(120);
    cfg.schedule.night_length = SimTime::Millis(5);
    cfg.schedule.num_days = 2;
    cfg.schedule.circuit_day = 1;
    // WAN-scale queues/timers: BDP is ~200 jumbo segments on the satellite.
    cfg.topology.voq.capacity_packets = 256;
    cfg.topology.host_link_rate_bps = 10'000'000'000;
    cfg.workload.base.rtt.min_rto = SimTime::Millis(50);
    cfg.workload.base.rtt.initial_rto = SimTime::Millis(200);
    cfg.workload.num_flows = 2;
    cfg.duration = SimTime::Seconds(seconds);
    cfg.warmup = SimTime::Millis(500);
    cfg.sample_interval = SimTime::Millis(1);
    return cfg;
  };

  std::printf("Satellite/fiber handover (%d s simulated):\n", seconds);
  std::printf("  fiber  : 500 Mbps, ~30 ms RTT (TDN 0)\n");
  std::printf("  sat    : 1.5 Gbps, ~10 ms RTT (TDN 1), 120 ms passes\n\n");

  const ExperimentConfig base = configure(Variant::kCubic);
  const Schedule schedule(base.schedule);
  const double optimal =
      schedule.OptimalBits(schedule.week_length(),
                           base.topology.packet_mode.rate_bps,
                           base.topology.circuit_mode.rate_bps) /
      schedule.week_length().seconds();

  std::printf("  %-8s %10s %8s %6s %6s\n", "variant", "goodput", "of-opt",
              "rtx", "rto");
  for (Variant v : {Variant::kTdtcp, Variant::kCubic}) {
    ExperimentResult r = RunExperiment(configure(v));
    std::printf("  %-8s %7.0f Mb %7.1f%% %6llu %6llu\n", VariantName(v),
                r.goodput_bps / 1e6, 100.0 * r.goodput_bps / optimal,
                static_cast<unsigned long long>(r.retransmissions),
                static_cast<unsigned long long>(r.timeouts));
  }
  std::printf("  %-8s %7.0f Mb %7.1f%%   (analytic)\n", "optimal",
              optimal / 1e6, 100.0);
  std::printf("  %-8s %7.0f Mb %7.1f%%   (analytic)\n", "fiber",
              base.topology.packet_mode.rate_bps / 1e6,
              100.0 * base.topology.packet_mode.rate_bps / optimal);
  return 0;
}
